#include "core/accelerator.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "nn/conv_ref.hpp"

namespace pcnna::core {

Accelerator::Accelerator(PcnnaConfig config, TimingFidelity fidelity)
    : config_(std::move(config)),
      fidelity_(fidelity),
      scheduler_(config_),
      timing_(config_, fidelity),
      energy_(config_),
      engine_(config_) {}

nn::Tensor Accelerator::run_conv(const nn::Tensor& input,
                                 const nn::Tensor& weights,
                                 const nn::Tensor& bias, std::size_t stride,
                                 std::size_t pad, LayerRunReport* report) {
  EngineStats stats;
  nn::Tensor out = engine_.conv2d(input, weights, bias, stride, pad, &stats);
  if (report) {
    nn::ConvLayerParams params;
    params.name = "conv";
    params.n = input.shape().h;
    params.m = weights.shape().h;
    params.p = pad;
    params.s = stride;
    params.nc = input.shape().c;
    params.K = weights.shape().n;
    report->layer_name = params.name;
    report->timing = timing_.layer_time(params);
    report->energy = energy_.layer_energy(scheduler_.plan(params),
                                          report->timing);
    report->engine = stats;
    const nn::Tensor ref = nn::conv2d_direct(input, weights, bias, stride, pad);
    report->max_abs_err_vs_reference = nn::max_abs_diff(out, ref);
    report->rmse_vs_reference = rmse(out.data(), ref.data());
  }
  return out;
}

NetworkRunReport Accelerator::run_range(const nn::Network& net,
                                        const nn::NetWeights& weights,
                                        const nn::Tensor& input,
                                        std::size_t op_begin,
                                        std::size_t op_end,
                                        bool simulate_values) {
  PCNNA_CHECK(weights.weight.size() == net.ops().size());
  PCNNA_CHECK(weights.bias.size() == net.ops().size());
  PCNNA_CHECK_MSG(op_begin <= op_end && op_end <= net.ops().size(),
                  "op range [" << op_begin << ", " << op_end
                               << ") out of bounds for network '"
                               << net.name() << "'");
  PCNNA_CHECK_MSG(input.shape() == net.shape_before(op_begin),
                  "input does not match network '" << net.name()
                                                   << "' at op " << op_begin);

  NetworkRunReport report;
  nn::Tensor x = input;

  for (std::size_t i = op_begin; i < op_end; ++i) {
    const nn::LayerOp& op = net.ops()[i];
    switch (op.kind) {
      case nn::OpKind::kConv: {
        LayerRunReport layer;
        layer.layer_name = op.conv.name;
        layer.timing = timing_.layer_time(op.conv);
        layer.energy =
            energy_.layer_energy(scheduler_.plan(op.conv), layer.timing);

        const nn::Tensor ref_out = nn::conv2d_direct(
            x, weights.weight[i], weights.bias[i], op.conv.s, op.conv.p);
        if (simulate_values) {
          nn::Tensor sim_out = engine_.conv2d(x, weights.weight[i],
                                              weights.bias[i], op.conv.s,
                                              op.conv.p, &layer.engine);
          layer.max_abs_err_vs_reference = nn::max_abs_diff(sim_out, ref_out);
          layer.rmse_vs_reference = rmse(sim_out.data(), ref_out.data());
          x = std::move(sim_out);
        } else {
          x = ref_out;
        }
        report.total_optical_core_time += layer.timing.optical_core_time;
        report.total_full_system_time += layer.timing.full_system_time;
        report.total_energy += layer.energy.total();
        report.conv_layers.push_back(std::move(layer));
        break;
      }
      case nn::OpKind::kReLU:
        x = nn::relu(x);
        break;
      case nn::OpKind::kMaxPool:
        x = nn::maxpool2d(x, op.pool.window, op.pool.stride);
        break;
      case nn::OpKind::kAvgPool:
        x = nn::avgpool2d(x, op.pool.window, op.pool.stride);
        break;
      case nn::OpKind::kLRN:
        x = nn::lrn(x, op.lrn.size, op.lrn.alpha, op.lrn.beta, op.lrn.k);
        break;
      case nn::OpKind::kFullyConnected: {
        if (!config_.accelerate_fc) {
          x = nn::fully_connected(x, weights.weight[i], weights.bias[i]);
          break;
        }
        // Offload to the optical core: an FC layer is exactly a 1x1 conv
        // over a 1x1 feature map with nc = in and K = out, so the conv
        // planning/timing/energy machinery applies unchanged.
        nn::ConvLayerParams fc_params;
        fc_params.name = "fc@op" + std::to_string(i);
        fc_params.n = 1;
        fc_params.m = 1;
        fc_params.p = 0;
        fc_params.s = 1;
        fc_params.nc = x.size();
        fc_params.K = op.fc.out;

        LayerRunReport layer;
        layer.layer_name = fc_params.name;
        layer.timing = timing_.layer_time(fc_params);
        layer.energy =
            energy_.layer_energy(scheduler_.plan(fc_params), layer.timing);

        const nn::Tensor ref_out =
            nn::fully_connected(x, weights.weight[i], weights.bias[i]);
        if (simulate_values) {
          nn::Tensor sim_out = engine_.fully_connected(
              x, weights.weight[i], weights.bias[i], &layer.engine);
          layer.max_abs_err_vs_reference = nn::max_abs_diff(sim_out, ref_out);
          layer.rmse_vs_reference = rmse(sim_out.data(), ref_out.data());
          x = std::move(sim_out);
        } else {
          x = ref_out;
        }
        report.total_optical_core_time += layer.timing.optical_core_time;
        report.total_full_system_time += layer.timing.full_system_time;
        report.total_energy += layer.energy.total();
        report.fc_layers.push_back(std::move(layer));
        break;
      }
      case nn::OpKind::kSoftmax:
        x = nn::softmax(x);
        break;
    }
  }
  report.output = std::move(x);
  return report;
}

NetworkRunReport Accelerator::run(const nn::Network& net,
                                  const nn::NetWeights& weights,
                                  const nn::Tensor& input,
                                  bool simulate_values,
                                  bool compare_reference) {
  NetworkRunReport report =
      run_range(net, weights, input, 0, net.ops().size(), simulate_values);

  if (compare_reference) {
    report.reference_output = nn::forward_reference(net, weights, input);
    report.output_rmse =
        rmse(report.output.data(), report.reference_output.data());
    report.output_max_abs_err =
        nn::max_abs_diff(report.output, report.reference_output);
    // Compare argmax (meaningful for classifier outputs, harmless otherwise).
    std::size_t arg_sim = 0, arg_ref = 0;
    for (std::size_t j = 1; j < report.output.size(); ++j) {
      if (report.output[j] > report.output[arg_sim]) arg_sim = j;
      if (report.reference_output[j] > report.reference_output[arg_ref])
        arg_ref = j;
    }
    report.argmax_match = arg_sim == arg_ref;
  }
  return report;
}

} // namespace pcnna::core
