#include "core/throughput.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace pcnna::core {

ThroughputModel::ThroughputModel(PcnnaConfig config, TimingFidelity fidelity)
    : timing_(std::move(config), fidelity) {}

ThroughputReport ThroughputModel::pipeline(
    const std::vector<nn::ConvLayerParams>& layers, std::size_t cores) const {
  PCNNA_CHECK(!layers.empty());
  PCNNA_CHECK(cores >= 1);
  const std::size_t n = layers.size();
  const std::size_t p = std::min(cores, n);

  std::vector<double> times(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    times[i] = timing_.layer_time(layers[i]).full_system_time;
    total += times[i];
  }
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + times[i];

  // dp[k][i]: minimal max-stage-time partitioning the first i layers into k
  // contiguous stages. split[k][i] records the last stage's start.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(p + 1, std::vector<double>(n + 1, kInf));
  std::vector<std::vector<std::size_t>> split(
      p + 1, std::vector<std::size_t>(n + 1, 0));
  dp[0][0] = 0.0;
  for (std::size_t k = 1; k <= p; ++k) {
    for (std::size_t i = k; i <= n; ++i) {
      for (std::size_t j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] == kInf) continue;
        const double candidate =
            std::max(dp[k - 1][j], prefix[i] - prefix[j]);
        if (candidate < dp[k][i]) {
          dp[k][i] = candidate;
          split[k][i] = j;
        }
      }
    }
  }

  ThroughputReport report;
  report.cores = p;
  report.latency = total;
  report.interval = dp[p][n];

  // Reconstruct stage boundaries.
  std::vector<std::pair<std::size_t, std::size_t>> stages_rev;
  std::size_t end = n;
  for (std::size_t k = p; k >= 1; --k) {
    const std::size_t begin = split[k][end];
    stages_rev.push_back({begin, end - 1});
    end = begin;
  }
  report.stages.assign(stages_rev.rbegin(), stages_rev.rend());
  for (const auto& [first, last] : report.stages) {
    report.stage_times.push_back(prefix[last + 1] - prefix[first]);
  }
  report.throughput_speedup = total / report.interval;
  return report;
}

} // namespace pcnna::core
