#include "core/planner.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"

namespace pcnna::core {

namespace {

/// 64-bit FNV-1a accumulator with typed field helpers. Doubles are hashed
/// by bit pattern (memcpy, no float compare), so two configs hash equal iff
/// every field is bit-identical.
struct Fnv1a {
  std::uint64_t state = 0xcbf29ce484222325ull;

  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      state ^= p[i];
      state *= 0x100000001b3ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void i32(int v) { u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v))); }
  void flag(bool v) { u64(v ? 1u : 0u); }
  void sz(std::size_t v) { u64(static_cast<std::uint64_t>(v)); }

  void add(const elec::DacConfig& c) {
    i32(c.bits);
    f64(c.sample_rate);
    f64(c.area);
    f64(c.power);
    f64(c.full_scale);
  }
  void add(const elec::AdcConfig& c) {
    i32(c.bits);
    f64(c.sample_rate);
    f64(c.area);
    f64(c.power);
    f64(c.full_scale);
  }
  void add(const elec::SramConfig& c) {
    f64(c.capacity_bits);
    i32(c.word_bits);
    f64(c.access_time);
    f64(c.area);
    f64(c.access_energy);
    f64(c.retention_power);
  }
  void add(const elec::DramConfig& c) {
    f64(c.bandwidth);
    f64(c.first_access_latency);
    f64(c.energy_per_byte);
  }
  void add(const phot::MicroringConfig& c) {
    f64(c.design_wavelength);
    f64(c.q_factor);
    f64(c.max_drop);
    f64(c.insertion_loss_db);
    f64(c.max_detuning);
    i32(c.tuning_bits);
    f64(c.thermal_efficiency);
    f64(c.fab_sigma);
    f64(c.footprint_side);
  }
  void add(const phot::PhotodiodeConfig& c) {
    f64(c.responsivity);
    f64(c.dark_current);
    f64(c.temperature);
    f64(c.load_resistance);
    flag(c.enable_shot_noise);
    flag(c.enable_thermal_noise);
  }
  void add(const phot::WeightBankConfig& c) {
    add(c.ring);
    add(c.photodiode);
    flag(c.model_crosstalk);
    i32(c.calibration_iterations);
  }
  void add(const phot::MzmConfig& c) {
    f64(c.v_pi);
    f64(c.insertion_loss_db);
    f64(c.extinction_ratio_db);
    flag(c.predistort);
    f64(c.bandwidth);
  }
  void add(const phot::LaserConfig& c) {
    f64(c.power);
    f64(c.rin_db_per_hz);
    f64(c.wall_plug_efficiency);
  }
  void add(const phot::WaveguideConfig& c) {
    f64(c.propagation_loss_db_per_cm);
    f64(c.splitter_excess_loss_db);
  }
};

} // namespace

std::uint64_t config_hash(const PcnnaConfig& config) {
  Fnv1a h;
  h.f64(config.fast_clock);
  h.f64(config.io_clock);
  h.sz(config.num_input_dacs);
  h.add(config.input_dac);
  h.add(config.weight_dac);
  h.sz(config.num_adcs);
  h.add(config.adc);
  h.add(config.sram);
  h.add(config.dram);
  h.i32(config.word_bits);
  h.sz(config.sram_port_words);
  h.add(config.bank);
  h.add(config.mzm);
  h.add(config.laser);
  h.add(config.waveguide);
  h.sz(config.max_wavelengths);
  h.u64(static_cast<std::uint64_t>(config.allocation));
  h.f64(config.ring_settle_time);
  h.flag(config.enable_noise);
  h.flag(config.enable_quantization);
  h.flag(config.accelerate_fc);
  h.f64(config.stuck_ring_rate);
  h.flag(config.dual_rail_inputs);
  h.f64(config.adc_headroom);
  h.u64(config.seed);
  // engine_threads deliberately omitted — see the declaration comment.
  return h.state;
}

std::uint64_t PlanCache::epoch(std::uint64_t config_key) const {
  const auto it = config_epochs_.find(config_key);
  return epoch_ + (it == config_epochs_.end() ? 0 : it->second);
}

void PlanCache::bump_epoch(std::uint64_t config_key) {
  config_epochs_[config_key] += 1;
}

const LayerStrategy* PlanCache::lookup(const PlanKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses += 1;
    return nullptr;
  }
  if (it->second.epoch != epoch(key.config)) {
    // Calibration artifact predates the last recalibration: evict, and
    // report a miss so the caller re-plans under the current epoch.
    entries_.erase(it);
    stats_.invalidations += 1;
    stats_.misses += 1;
    return nullptr;
  }
  stats_.hits += 1;
  return &it->second.strategy;
}

void PlanCache::insert(const PlanKey& key, LayerStrategy strategy) {
  entries_[key] = Entry{epoch(key.config), std::move(strategy)};
}

void PlanCache::clear() {
  entries_.clear();
  stats_ = PlanCacheStats{};
}

std::uint64_t plan_config_key(const PcnnaConfig& config,
                              TimingFidelity fidelity) {
  // Fold the timing fidelity into the configuration digest: the same
  // hardware priced under kPaper vs kFull yields different strategies, so
  // the two must never share cache entries.
  std::uint64_t key = config_hash(config);
  key ^= static_cast<std::uint64_t>(fidelity) + 0x9e3779b97f4a7c15ull;
  key *= 0x100000001b3ull;
  return key;
}

Planner::Planner(PcnnaConfig config, TimingFidelity fidelity, PlanCache* cache)
    : config_(std::move(config)),
      fidelity_(fidelity),
      cache_(cache != nullptr ? cache : &owned_) {
  config_.validate();
  config_key_ = plan_config_key(config_, fidelity_);
}

PlanKey Planner::key(const nn::ConvLayerParams& layer) const {
  PlanKey k;
  k.config = config_key_;
  k.n = layer.n;
  k.m = layer.m;
  k.p = layer.p;
  k.s = layer.s;
  k.nc = layer.nc;
  k.K = layer.K;
  return k;
}

LayerStrategy Planner::plan_layer(const nn::ConvLayerParams& layer) {
  const PlanKey k = key(layer);
  if (const LayerStrategy* hit = cache_->lookup(k)) {
    return *hit;
  }
  LayerStrategy strategy = search(layer);
  cache_->insert(k, strategy);
  return strategy;
}

NetworkPlan Planner::plan_network(
    const std::vector<nn::ConvLayerParams>& layers) {
  NetworkPlan result;
  const TimingModel baseline(config_, fidelity_);
  for (const nn::ConvLayerParams& layer : layers) {
    result.layers.push_back(plan_layer(layer));
    result.total_latency += result.layers.back().latency;
    result.baseline_latency += baseline.layer_time(layer).full_system_time;
  }
  return result;
}

LayerStrategy Planner::search(const nn::ConvLayerParams& layer) const {
  layer.validate();

  // Candidate WDM budgets: the configured budget, then halvings of it.
  // The hardware budget is a ceiling, so no candidate exceeds it; going
  // narrower trades more segmented passes for smaller banks, which can win
  // when the wide bank's mapping is infeasible (SRAM working set) — and
  // documents, via candidates_searched, that the full budget was compared
  // against the alternatives rather than assumed.
  std::vector<std::size_t> budgets;
  for (std::size_t w = config_.max_wavelengths; w >= 1; w /= 2) {
    budgets.push_back(w);
    if (w == 1) break;
  }
  constexpr RingAllocation kAllocations[] = {RingAllocation::kFullKernel,
                                             RingAllocation::kPerChannel};

  bool found = false;
  LayerStrategy best;
  for (const RingAllocation allocation : kAllocations) {
    for (const std::size_t wavelengths : budgets) {
      PcnnaConfig candidate = config_;
      candidate.allocation = allocation;
      candidate.max_wavelengths = wavelengths;

      LayerStrategy s;
      s.layer = layer;
      s.wavelengths = wavelengths;
      s.allocation = allocation;
      try {
        s.plan = Scheduler(candidate).plan(layer);
      } catch (const Error&) {
        continue; // infeasible mapping (e.g. working set exceeds SRAM)
      }
      s.timing = TimingModel(candidate, fidelity_).layer_time(layer);
      s.latency = s.timing.full_system_time;

      best.candidates_searched += 1;
      // Deterministic order: lower latency, then fewer rings, then fewer
      // sequential passes per location; first-seen (enumeration order
      // above) breaks exact ties.
      const bool better =
          !found ||
          std::tie(s.latency, s.plan.rings_total, s.plan.cycles_per_location) <
              std::tie(best.latency, best.plan.rings_total,
                       best.plan.cycles_per_location);
      if (better) {
        const std::size_t searched = best.candidates_searched;
        best = s;
        best.candidates_searched = searched;
      }
      found = true;
    }
  }
  PCNNA_CHECK_MSG(found, "planner: no feasible mapping for layer '"
                             << layer.name << "'");

  // Calibration artifact for the winning bank width. Reseeding from the
  // configuration seed pins the fabrication draws, so repeated searches
  // (and therefore cached vs fresh strategies) are bit-identical.
  PcnnaConfig winner = config_;
  winner.allocation = best.allocation;
  winner.max_wavelengths = best.wavelengths;
  Rng rng(config_.seed);
  best.usable_range = measured_usable_range(
      winner, static_cast<std::size_t>(best.plan.group_size), rng);
  return best;
}

} // namespace pcnna::core
