// Ahead-of-time layer planner with a memoizing plan cache.
//
// The Scheduler maps a layer onto the hardware exactly as configured; the
// Planner goes one step further and *searches* the per-layer strategy space
// — WDM channel budget (how wide each segmented bank pass is) crossed with
// the ring-allocation scheme (full-kernel vs per-channel) — scoring every
// feasible candidate with the TimingModel and keeping the fastest. The
// search result is memoized in a PlanCache keyed by (configuration hash,
// layer geometry), so a serving fleet that registers many models over the
// same PCU configuration prices each distinct layer shape exactly once.
//
// Cached strategies also carry a calibration artifact: the empirically
// measured usable weight range of a bank sized for the winning strategy
// (core::measured_usable_range), so serving paths can consult it without
// re-probing. Because that measurement goes stale when the device is
// recalibrated (thermal drift, re-trimmed heaters), every cache entry
// records the cache's recalibration epoch at insert time; bumping the epoch
// lazily invalidates exactly the entries inserted before the bump.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// FNV-1a (64-bit) digest of every field of the configuration that any
/// planned or priced quantity depends on, nested device configs included.
/// `engine_threads` is deliberately excluded: it is a host-simulation
/// parallelism knob that no modeled hardware quantity depends on (see its
/// doc in PcnnaConfig), so hashing it would only split cache entries
/// between runs that plan identically.
std::uint64_t config_hash(const PcnnaConfig& config);

/// Cache-key digest of (configuration, timing fidelity): config_hash with
/// the fidelity folded in — exactly the digest Planner::key() stamps into
/// PlanKey::config. Exposed so integrations that hold only a config (e.g.
/// the serving runtime bumping a recalibration epoch after a PCU repair)
/// can address the cache entries of that configuration without a Planner.
std::uint64_t plan_config_key(const PcnnaConfig& config,
                              TimingFidelity fidelity);

/// The winning strategy for one layer: the candidate configuration knobs,
/// the mapping and timing they produce, and the calibration artifact.
struct LayerStrategy {
  nn::ConvLayerParams layer;

  /// WDM channel budget the winning candidate ran under (<= the configured
  /// max_wavelengths; the search never exceeds the hardware budget).
  std::size_t wavelengths = 0;
  RingAllocation allocation = RingAllocation::kFullKernel;

  /// Mapping and per-layer timing under the winning candidate.
  LayerPlan plan;
  LayerTiming timing;
  /// Objective the search minimized: timing.full_system_time.
  double latency = 0.0;

  /// Calibration artifact: measured usable symmetric weight range of one
  /// plan.group_size-ring bank under the winning candidate, probed with a
  /// fabrication Rng seeded from the configuration seed (deterministic, so
  /// a cached strategy is bit-identical to a freshly searched one).
  double usable_range = 0.0;

  /// Feasible candidates the search evaluated (infeasible mappings that
  /// the Scheduler rejects are skipped, not counted).
  std::size_t candidates_searched = 0;

  friend bool operator==(const LayerStrategy&,
                         const LayerStrategy&) = default;
};

/// Cache key: configuration digest (fidelity folded in) + layer geometry.
/// The layer name is excluded — two layers with the same shape plan
/// identically.
struct PlanKey {
  std::uint64_t config = 0; ///< config_hash with TimingFidelity mixed in
  std::uint64_t n = 0, m = 0, p = 0, s = 1, nc = 0, K = 0;

  friend bool operator==(const PlanKey&, const PlanKey&) = default;
  friend bool operator<(const PlanKey& a, const PlanKey& b) {
    return std::tie(a.config, a.n, a.m, a.p, a.s, a.nc, a.K) <
           std::tie(b.config, b.n, b.m, b.p, b.s, b.nc, b.K);
  }
};

struct PlanCacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  /// Stale entries evicted on lookup after an epoch bump. Every
  /// invalidation is also counted as a miss (the caller re-plans).
  std::size_t invalidations = 0;

  friend bool operator==(const PlanCacheStats&,
                         const PlanCacheStats&) = default;
};

/// Memoized layer strategies with lazy epoch-based invalidation.
///
/// Not thread-safe; serving integrations populate it ahead of time (AOT)
/// from the registration path, which is single-threaded.
class PlanCache {
 public:
  /// Current global recalibration epoch. Entries remember the effective
  /// epoch (global + per-config) they were inserted under and are only
  /// served while it matches.
  std::uint64_t epoch() const { return epoch_; }

  /// Effective recalibration epoch for one configuration digest
  /// (PlanKey::config / plan_config_key): the global epoch plus that
  /// configuration's own bump count.
  std::uint64_t epoch(std::uint64_t config_key) const;

  /// Declare every previously inserted strategy's calibration artifact
  /// stale (e.g. after the device is re-trimmed). Entries are invalidated
  /// lazily, on their next lookup; entries inserted after the bump are
  /// unaffected.
  void bump_epoch() { epoch_ += 1; }

  /// Per-configuration variant: declare stale only the entries whose key
  /// carries `config_key` (a repair recalibrates *one* PCU configuration;
  /// strategies planned for other device models stay fresh). Same lazy
  /// invalidation semantics as the global bump.
  void bump_epoch(std::uint64_t config_key);

  /// Returns the cached strategy, or nullptr on miss. A stale entry
  /// (inserted under an older epoch) is erased and counted as one
  /// invalidation plus one miss. The pointer is valid until the next
  /// non-const call on this cache.
  const LayerStrategy* lookup(const PlanKey& key);

  /// Insert (or overwrite) the strategy for `key` under the current epoch.
  void insert(const PlanKey& key, LayerStrategy strategy);

  const PlanCacheStats& stats() const { return stats_; }
  std::size_t size() const { return entries_.size(); }

  /// Drop all entries and reset the statistics; the epoch is kept (it
  /// tracks the physical device, not the cache's contents).
  void clear();

 private:
  struct Entry {
    /// Effective epoch (global + per-config) at insert time.
    std::uint64_t epoch = 0;
    LayerStrategy strategy;
  };

  std::map<PlanKey, Entry> entries_;
  std::uint64_t epoch_ = 0;
  /// Per-configuration bump counts (only digests that were ever bumped).
  std::map<std::uint64_t, std::uint64_t> config_epochs_;
  PlanCacheStats stats_;
};

/// plan_network() output: one winning strategy per conv layer plus the
/// network-level before/after of the search.
struct NetworkPlan {
  std::vector<LayerStrategy> layers;
  /// Sum of the winning per-layer latencies.
  double total_latency = 0.0;
  /// Sum of per-layer full-system times under the configuration exactly as
  /// given (no search) — what the fleet would pay without the planner.
  double baseline_latency = 0.0;
};

/// AOT strategy search over (wavelength budget, ring allocation), memoized
/// in a PlanCache. Deterministic: candidate enumeration order and the
/// tie-break are fixed, and the calibration probe reseeds from the
/// configuration seed on every search.
class Planner {
 public:
  /// `cache == nullptr` gives the planner a private cache; pass a shared
  /// one to memoize across planners that serve the same fleet.
  explicit Planner(PcnnaConfig config,
                   TimingFidelity fidelity = TimingFidelity::kFull,
                   PlanCache* cache = nullptr);

  const PcnnaConfig& config() const { return config_; }
  TimingFidelity fidelity() const { return fidelity_; }
  PlanCache& cache() { return *cache_; }
  const PlanCache& cache() const { return *cache_; }

  /// Cache key this planner uses for `layer`.
  PlanKey key(const nn::ConvLayerParams& layer) const;

  /// Cached strategy if fresh, otherwise a full search (then cached).
  LayerStrategy plan_layer(const nn::ConvLayerParams& layer);

  NetworkPlan plan_network(const std::vector<nn::ConvLayerParams>& layers);

 private:
  LayerStrategy search(const nn::ConvLayerParams& layer) const;

  PcnnaConfig config_;
  TimingFidelity fidelity_;
  std::uint64_t config_key_ = 0;
  PlanCache owned_; ///< used when no shared cache was supplied
  PlanCache* cache_ = nullptr;
};

} // namespace pcnna::core
