// Kernel-sparsity analysis (extension beyond the paper).
//
// The paper's introduction motivates PCNNA with the "sparsity of
// connections between input feature maps and kernels"; receptive-field
// filtering exploits the *structural* sparsity. This module additionally
// exploits *value* sparsity in pruned kernels: rings whose weight is zero
// can be left parked far off resonance — they still occupy area but draw no
// heater power and contribute no crosstalk, and a design targeting a known
// pruned model can drop them entirely.
#pragma once

#include <cstdint>

#include "core/config.hpp"
#include "nn/conv_params.hpp"
#include "nn/tensor.hpp"

namespace pcnna::core {

/// Value-sparsity statistics of one layer's kernel bank.
struct SparsityStats {
  std::uint64_t total_weights = 0;
  std::uint64_t nonzero_weights = 0;
  /// Fraction of exactly-zero weights in [0, 1].
  double sparsity = 0.0;
  /// Largest nonzero count across kernels — a shared-rings design that
  /// reuses one physical bank per kernel slot must provision for the worst
  /// kernel, not the average.
  std::uint64_t max_nonzero_per_kernel = 0;

  /// Rings needed when zero-weight rings are dropped at design time.
  std::uint64_t pruned_rings = 0;
  /// Rings needed when one shared bank layout serves all kernels (sized by
  /// the densest kernel): max_nonzero_per_kernel * K.
  std::uint64_t pruned_rings_uniform = 0;
};

class SparsityAnalyzer {
 public:
  /// Weights below `threshold` in magnitude count as zero (prune level).
  explicit SparsityAnalyzer(double threshold = 0.0);

  double threshold() const { return threshold_; }

  /// Analyze a kernel bank tensor of shape [K, nc, m, m].
  SparsityStats analyze(const nn::Tensor& weights) const;

  /// Mean heater power saved per pruned ring: a parked ring needs no
  /// detuning drive (vs the ~half-max-detuning average of an active ring).
  double heater_power_saved(const PcnnaConfig& config,
                            const SparsityStats& stats) const;

 private:
  double threshold_;
};

} // namespace pcnna::core
