#include "core/noise_budget.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "common/units.hpp"
#include "photonics/waveguide.hpp"

namespace pcnna::core {

double NoiseBudget::total_mac_sigma() const {
  return std::sqrt(mac_sigma * mac_sigma +
                   adc_quantization_sigma * adc_quantization_sigma);
}

NoiseBudgetModel::NoiseBudgetModel(PcnnaConfig config, SignalStats stats)
    : config_(std::move(config)), stats_(stats) {
  config_.validate();
  PCNNA_CHECK(stats.x_rms > 0.0 && stats.w_rms > 0.0);
}

NoiseBudget NoiseBudgetModel::pass_budget(std::size_t channels_per_pass,
                                          std::size_t passes,
                                          std::size_t fanout,
                                          std::size_t n_kernel) const {
  PCNNA_CHECK(channels_per_pass > 0 && passes > 0 && fanout > 0);
  NoiseBudget b;

  // --- signal chain constants (mirror OpticalConvEngine::make_chain) ---
  const phot::Waveguide wg(config_.waveguide);
  const double p0 = config_.laser.power;
  const double bcast = wg.broadcast_factor(fanout);
  const double mzm_loss = from_db(-config_.mzm.insertion_loss_db);
  const double mzm_floor = from_db(-config_.mzm.extinction_ratio_db);
  const double resp = config_.bank.photodiode.responsivity;
  b.denom_current = resp * p0 * bcast * mzm_loss * (1.0 - mzm_floor);

  // Mean per-channel optical power arriving at the bank.
  const double p_ch =
      p0 * bcast * mzm_loss * (mzm_floor + (1.0 - mzm_floor) * stats_.x_mean);
  const double p_total = static_cast<double>(channels_per_pass) * p_ch;
  // Zero-weight rings split the bundle evenly; on average half the power
  // lands on each branch.
  b.mean_branch_current = resp * 0.5 * p_total;

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  if (bw > 0.0) {
    // RIN: per-channel power fluctuation sigma_P = P_ch sqrt(rin * B); the
    // balanced detector weights channel i by w_i, so the variances add with
    // E[w^2].
    const double rin_linear = from_db(config_.laser.rin_db_per_hz);
    const double sigma_p = p_ch * std::sqrt(rin_linear * bw);
    b.sigma_rin = resp * sigma_p * stats_.w_rms *
                  std::sqrt(static_cast<double>(channels_per_pass));

    // Shot noise of both branches: var = 2 q I B summed over branches;
    // total branch current is R * P_total regardless of the split.
    if (config_.bank.photodiode.enable_shot_noise) {
      b.sigma_shot = std::sqrt(2.0 * units::q_e * resp * p_total * bw);
    }

    // Johnson noise, two independent branches.
    if (config_.bank.photodiode.enable_thermal_noise) {
      const double var_one = 4.0 * units::k_B *
                             config_.bank.photodiode.temperature * bw /
                             config_.bank.photodiode.load_resistance;
      b.sigma_thermal = std::sqrt(2.0 * var_one);
    }
  }
  b.sigma_pass = std::sqrt(b.sigma_rin * b.sigma_rin +
                           b.sigma_shot * b.sigma_shot +
                           b.sigma_thermal * b.sigma_thermal);

  // Passes accumulate independently (analog wire-sum or digital add).
  b.mac_sigma =
      b.sigma_pass * std::sqrt(static_cast<double>(passes)) / b.denom_current;

  // ADC quantization, using the same range calibration as the engine:
  // fs = headroom * sqrt(channels * E[x^2] * E[w^2]) per digitized value.
  if (config_.enable_quantization) {
    const double fs = std::max(
        1e-6, config_.adc_headroom *
                  std::sqrt(static_cast<double>(channels_per_pass) *
                            stats_.x_rms * stats_.x_rms * stats_.w_rms *
                            stats_.w_rms));
    const double levels =
        std::pow(2.0, static_cast<double>(config_.adc.bits)) - 1.0;
    const double lsb = 2.0 * fs / levels;
    // Per digitization lsb/sqrt(12); with digital accumulation across
    // passes the quantization errors also add in quadrature. (The analog
    // wire-sum case digitizes once; callers pass passes accordingly via the
    // layer_budget wrapper.)
    b.adc_quantization_sigma = lsb / std::sqrt(12.0);
  }

  b.mac_rms = std::sqrt(static_cast<double>(n_kernel)) * stats_.x_rms *
              stats_.w_rms;
  const double total = b.total_mac_sigma();
  b.snr_db = total > 0.0 ? 20.0 * std::log10(b.mac_rms / total) : 1e9;

  const double candidates[] = {b.sigma_rin, b.sigma_shot, b.sigma_thermal,
                               b.adc_quantization_sigma * b.denom_current};
  const char* names[] = {"RIN", "shot", "thermal", "ADC"};
  std::size_t best = 0;
  for (std::size_t i = 1; i < 4; ++i)
    if (candidates[i] > candidates[best]) best = i;
  b.dominant_source = names[best];
  return b;
}

NoiseBudget NoiseBudgetModel::layer_budget(
    const nn::ConvLayerParams& layer) const {
  layer.validate();
  const Scheduler scheduler(config_);
  const LayerPlan plan = scheduler.plan(layer);

  const std::size_t passes =
      config_.allocation == RingAllocation::kFullKernel
          ? plan.groups.size()
          : plan.groups.size() * layer.nc;
  NoiseBudget b = pass_budget(plan.group_size, passes, layer.K,
                              layer.kernel_size());
  b.layer_name = layer.name;

  // Per-channel allocation digitizes every pass: quantization noise adds in
  // quadrature across passes instead of once.
  if (config_.enable_quantization &&
      config_.allocation == RingAllocation::kPerChannel) {
    b.adc_quantization_sigma *= std::sqrt(static_cast<double>(passes));
    const double total = b.total_mac_sigma();
    b.snr_db = total > 0.0 ? 20.0 * std::log10(b.mac_rms / total) : 1e9;
  }
  return b;
}

} // namespace pcnna::core
