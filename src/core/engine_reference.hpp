// FROZEN reference implementation of the optical conv engine (PR 3).
//
// This is a verbatim snapshot of the pre-rewrite OpticalConvEngine::conv2d
// hot path: per-pixel receptive-field vectors are allocated inside the
// oy/ox loops, DAC quantization and MZM transfer are re-evaluated per pixel,
// and bank responses are consumed in array-of-structs form. It exists for
// exactly two purposes:
//
//  * the A/B bit-identity tests — the rewritten engine must produce
//    bit-identical outputs (and an identical RNG trajectory) for every
//    configuration, so every serving-runtime guarantee built on the old
//    engine carries over;
//  * the perf harness — bench_micro_engine times this snapshot against the
//    rewritten engine to report the speedup in BENCH_engine.json.
//
// DO NOT optimize or otherwise modify this path; it is the frozen baseline.
// It intentionally shares nothing with optical_conv_engine.cpp so changes
// there cannot leak in here.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/scheduler.hpp"
#include "nn/tensor.hpp"

namespace pcnna::core {

/// Frozen pre-rewrite conv engine. Same contract as
/// OpticalConvEngine::conv2d; fully-connected layers are not snapshotted
/// (the rewrite does not touch that path).
class ReferenceConvEngine {
 public:
  explicit ReferenceConvEngine(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  nn::Tensor conv2d(const nn::Tensor& input, const nn::Tensor& weights,
                    const nn::Tensor& bias, std::size_t stride,
                    std::size_t pad, EngineStats* stats = nullptr);

  void reset_rng() { rng_.reseed(config_.seed); }
  void reseed_rng(std::uint64_t seed) { rng_.reseed(seed); }

 private:
  nn::Tensor run_full_kernel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);
  nn::Tensor run_per_channel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);

  PcnnaConfig config_;
  Rng rng_;
};

} // namespace pcnna::core
