#include "core/ring_count.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pcnna::core {

RingCountModel::RingCountModel(double ring_pitch) : ring_pitch_(ring_pitch) {
  PCNNA_CHECK(ring_pitch > 0.0);
}

std::uint64_t RingCountModel::unfiltered(const nn::ConvLayerParams& layer) const {
  layer.validate();
  return layer.input_size() * layer.K * layer.kernel_size();
}

std::uint64_t RingCountModel::filtered(const nn::ConvLayerParams& layer,
                                       RingAllocation allocation) const {
  layer.validate();
  switch (allocation) {
    case RingAllocation::kFullKernel:
      return layer.K * layer.kernel_size();
    case RingAllocation::kPerChannel:
      return layer.K * layer.m * layer.m;
  }
  throw Error("unknown ring allocation");
}

double RingCountModel::savings_factor(const nn::ConvLayerParams& layer) const {
  return static_cast<double>(unfiltered(layer)) /
         static_cast<double>(filtered(layer, RingAllocation::kFullKernel));
}

double RingCountModel::area(std::uint64_t rings) const {
  return static_cast<double>(rings) * ring_pitch_ * ring_pitch_;
}

std::uint64_t RingCountModel::max_filtered(
    std::span<const nn::ConvLayerParams> layers,
    RingAllocation allocation) const {
  std::uint64_t mx = 0;
  for (const nn::ConvLayerParams& layer : layers)
    mx = std::max(mx, filtered(layer, allocation));
  return mx;
}

} // namespace pcnna::core
