// Top-level PCNNA hardware configuration.
//
// Aggregates every component spec the paper fixes (SS IV-V): the 5 GHz fast
// clock, 10 input DACs at 6 GSa/s, one kernel-weight DAC, the 2.8 GSa/s
// ADC, the 128 kb / 7 ns SRAM cache, off-chip DRAM, and the photonic core
// (MRR banks, lasers, MZMs, photodiodes). `paper_defaults()` is the exact
// configuration of the paper's evaluation; `ideal()` removes noise and
// quantization for functional-correctness tests.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/units.hpp"
#include "electronics/adc.hpp"
#include "electronics/dac.hpp"
#include "electronics/dram.hpp"
#include "electronics/sram.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/waveguide.hpp"
#include "photonics/weight_bank.hpp"

namespace pcnna::core {

/// How rings are allocated to a layer (DESIGN.md inconsistency #1).
enum class RingAllocation {
  /// Eq. (5): K * Nkernel rings — every receptive-field value of every
  /// kernel has a dedicated ring; one fast-clock cycle per location.
  kFullKernel,
  /// The paper's conv4 worked number (3456 = K * m * m): one input channel
  /// is weighted at a time and channel partial sums accumulate
  /// electronically; rings are retuned per channel pass.
  kPerChannel,
};

const char* ring_allocation_name(RingAllocation allocation);

/// Which effects the execution-time model includes.
enum class TimingFidelity {
  /// The paper's model (SS V-B): optical core takes one cycle per kernel
  /// location; the full system adds only the input-DAC constraint (Eq. 8).
  kPaper,
  /// Pipelined stage model that also accounts for ADC serialization, SRAM
  /// port width, DRAM traffic, WDM channel tiling, per-channel passes and
  /// weight programming (the ablation of DESIGN.md inconsistency #2).
  kFull,
};

const char* timing_fidelity_name(TimingFidelity fidelity);

struct PcnnaConfig {
  // --- clocks (paper SS IV) ---
  double fast_clock = 5.0 * units::GHz; ///< optical core + near electronics
  double io_clock = 500.0 * units::MHz; ///< external-interface domain

  // --- mixed-signal front/back end (paper SS V-B) ---
  std::size_t num_input_dacs = 10;
  elec::DacConfig input_dac{};  ///< 16 b, 6 GSa/s [16]
  elec::DacConfig weight_dac{}; ///< 1 kernel-weight DAC
  std::size_t num_adcs = 1;
  elec::AdcConfig adc{};        ///< 2.8 GSa/s [17]
  elec::SramConfig sram{};      ///< 128 kb, 7 ns [15]
  elec::DramConfig dram{};
  int word_bits = 16;           ///< feature-map/weight word width in memory

  /// SRAM words moved per port access in the full-fidelity timing model
  /// (a wide scratchpad port; 1 reproduces a strictly serial 7 ns/word).
  std::size_t sram_port_words = 64;

  // --- photonic core ---
  phot::WeightBankConfig bank{};
  phot::MzmConfig mzm{};
  phot::LaserConfig laser{};
  phot::WaveguideConfig waveguide{};
  /// WDM channel budget: receptive fields wider than this are split into
  /// segmented bank passes whose partial sums add electronically.
  std::size_t max_wavelengths = 96;
  RingAllocation allocation = RingAllocation::kFullKernel;
  /// Thermo-optic settling time after a ring retuning episode; charged per
  /// recalibration by the full-fidelity timing model (the hidden cost of the
  /// per-channel allocation, which retunes between channel passes).
  double ring_settle_time = 10.0 * units::us;

  // --- functional-simulation knobs ---
  bool enable_noise = true;       ///< RIN + shot + thermal noise
  bool enable_quantization = true;///< DAC/ADC value quantization
  /// Run fully-connected layers on the optical core too (the original
  /// broadcast-and-weight use case; the paper's PCNNA only offloads conv).
  bool accelerate_fc = false;
  /// Failure injection: probability that any given ring's heater is stuck
  /// at its parked (zero-weight) drive. Calibration works around healthy
  /// rings; stuck ones keep weight ~0.
  double stuck_ring_rate = 0.0;
  /// Dual-rail input encoding: signed inputs are split x = x+ - x-, the two
  /// non-negative halves run as separate optical passes, and the results
  /// subtract electronically. Doubles the optical/DAC work of layers that
  /// actually contain negative inputs; layers with non-negative inputs
  /// (post-ReLU) run single-rail regardless.
  bool dual_rail_inputs = false;
  double adc_headroom = 4.0;      ///< ADC full scale = headroom * sqrt(group)
  std::uint64_t seed = 1;         ///< fabrication + noise seed
  /// Intra-image parallelism of the functional engine: number of host
  /// threads sweeping kernel locations of one conv layer (1 = sequential).
  /// Outputs are bit-identical for any value — pixels are partitioned into
  /// fixed tiles, per-pixel accumulation order is unchanged, and with noise
  /// enabled the per-pixel RNG draws are pre-generated in the sequential
  /// pixel order before the tiles fan out. Purely a host-simulation knob;
  /// no modeled hardware quantity depends on it. The serving runtime
  /// multiplies this by its per-PCU worker threads, so keep the product
  /// within the host core budget.
  std::size_t engine_threads = 1;

  /// The configuration used throughout the paper's evaluation.
  static PcnnaConfig paper_defaults();

  /// Noise-free, quantization-free, crosstalk-free, high-resolution config
  /// for functional-correctness tests (optical MAC must match the golden
  /// convolution almost exactly).
  static PcnnaConfig ideal();

  /// A deliberately budget-constrained PCU: the per-channel ring
  /// allocation (K * m * m rings — the paper's conv4 worked number —
  /// instead of K * Nkernel), a quarter of the WDM channel budget
  /// (24 wavelengths), and 4 input DACs. Multi-channel layers pay nc
  /// sequential passes and nc thermal-settle recalibrations, and wide
  /// receptive fields segment into extra bank passes, so requests take
  /// several times longer than on paper_defaults() — the "small cheap
  /// PCU" of a heterogeneous serving fleet (docs/configuration.md,
  /// runtime::PcuSpec).
  static PcnnaConfig small_core();

  /// Throws pcnna::Error if fields are inconsistent.
  void validate() const;

  /// Memberwise equality. The serving runtime uses this to detect whether
  /// a PCU fleet is homogeneous (any PCU computes bit-identical outputs
  /// for a given request) or heterogeneous (outputs depend on which PCU's
  /// device model serves the request).
  friend bool operator==(const PcnnaConfig&, const PcnnaConfig&) = default;
};

} // namespace pcnna::core
