#include "core/sparsity.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace pcnna::core {

SparsityAnalyzer::SparsityAnalyzer(double threshold) : threshold_(threshold) {
  PCNNA_CHECK(threshold >= 0.0);
}

SparsityStats SparsityAnalyzer::analyze(const nn::Tensor& weights) const {
  PCNNA_CHECK_MSG(!weights.empty(), "empty weight tensor");
  const std::size_t K = weights.shape().n;
  const std::size_t per_kernel =
      weights.shape().c * weights.shape().h * weights.shape().w;

  SparsityStats stats;
  stats.total_weights = weights.size();
  for (std::size_t k = 0; k < K; ++k) {
    std::uint64_t nonzero = 0;
    for (std::size_t i = 0; i < per_kernel; ++i) {
      if (std::abs(weights[k * per_kernel + i]) > threshold_) ++nonzero;
    }
    stats.nonzero_weights += nonzero;
    stats.max_nonzero_per_kernel =
        std::max(stats.max_nonzero_per_kernel, nonzero);
  }
  stats.sparsity = 1.0 - static_cast<double>(stats.nonzero_weights) /
                             static_cast<double>(stats.total_weights);
  stats.pruned_rings = stats.nonzero_weights;
  stats.pruned_rings_uniform = stats.max_nonzero_per_kernel * K;
  return stats;
}

double SparsityAnalyzer::heater_power_saved(const PcnnaConfig& config,
                                            const SparsityStats& stats) const {
  const std::uint64_t pruned = stats.total_weights - stats.nonzero_weights;
  const double mean_heater_per_ring =
      0.5 * config.bank.ring.max_detuning / config.bank.ring.thermal_efficiency;
  return static_cast<double>(pruned) * mean_heater_per_ring;
}

} // namespace pcnna::core
