// Event-driven execution trace of one convolution layer (extension).
//
// The TimingModel prices a layer with closed-form stage equations; the
// TraceSimulator *schedules* the same layer event by event — weight load,
// per-location DAC conversions, optical passes, ADC samples, SRAM and DRAM
// transfers — on a simple resource-pipeline model, producing a timeline
// that can be inspected, asserted on, and cross-checked against the closed
// forms. Tests require the two to agree; architects can dump the trace to
// see exactly where time goes.
//
// Pipeline model: per kernel location the four stages
//   DAC -> optical -> ADC -> SRAM-stage
// form a linear pipeline with one location in flight per stage (II = max
// stage time); DRAM feature-map traffic streams concurrently; weight
// programming happens up front.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

enum class TraceEventKind {
  kWeightLoad,   ///< weights DRAM -> weight DAC -> ring programming
  kRingSettle,   ///< thermal settling episode after a retune
  kDramRead,     ///< input feature-map burst from DRAM
  kInputDac,     ///< fresh receptive-field values through the input DACs
  kOpticalPass,  ///< one bank pass (all K banks in parallel)
  kAdcSample,    ///< digitizing the K outputs of a location
  kSramStage,    ///< staging fresh inputs / outputs through the cache port
  kDramWrite,    ///< output feature-map burst to DRAM
};

const char* trace_event_name(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind;
  double start = 0.0;  ///< [s]
  double end = 0.0;    ///< [s]
  std::uint64_t location = 0; ///< kernel location index (where applicable)
  std::uint64_t units = 0;    ///< samples / words / passes in this event
  double duration() const { return end - start; }
};

/// Complete trace of one layer.
struct LayerTrace {
  nn::ConvLayerParams layer;
  std::vector<TraceEvent> events;
  double total_time = 0.0;     ///< end of the last event
  double weight_load_end = 0.0;///< when ring programming finished
  double compute_end = 0.0;    ///< when the last ADC/SRAM event finished

  /// Number of events of a given kind.
  std::uint64_t count(TraceEventKind kind) const;
  /// Busy time summed over events of a kind.
  double busy(TraceEventKind kind) const;
  /// Render a human-readable (truncated) timeline.
  void print(std::ostream& os, std::size_t max_events = 40) const;
};

/// Render the trace as Chrome trace-event JSON (common/trace_writer.hpp):
/// one thread track per device resource (TraceEventKind), every event a
/// complete span annotated with its location and unit count. The output
/// loads in Perfetto / chrome://tracing and shares its format with the
/// fleet-level runtime telemetry (docs/observability.md), so device- and
/// fleet-level timelines open in the same viewer.
void write_chrome_trace(const LayerTrace& trace, std::ostream& os);

class TraceSimulator {
 public:
  explicit TraceSimulator(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  /// Schedule one layer and return the full event trace. Event granularity
  /// is one kernel location (per-location events are not split further).
  LayerTrace trace_layer(const nn::ConvLayerParams& layer) const;

 private:
  PcnnaConfig config_;
  Scheduler scheduler_;
};

} // namespace pcnna::core
