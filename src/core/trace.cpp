#include "core/trace.hpp"

#include <algorithm>
#include <iterator>
#include <ostream>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/mathutil.hpp"
#include "common/trace_writer.hpp"
#include "electronics/dram.hpp"

namespace pcnna::core {

const char* trace_event_name(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kWeightLoad: return "weight-load";
    case TraceEventKind::kRingSettle: return "ring-settle";
    case TraceEventKind::kDramRead: return "dram-read";
    case TraceEventKind::kInputDac: return "input-dac";
    case TraceEventKind::kOpticalPass: return "optical";
    case TraceEventKind::kAdcSample: return "adc";
    case TraceEventKind::kSramStage: return "sram";
    case TraceEventKind::kDramWrite: return "dram-write";
  }
  return "?";
}

std::uint64_t LayerTrace::count(TraceEventKind kind) const {
  std::uint64_t n = 0;
  for (const TraceEvent& e : events)
    if (e.kind == kind) ++n;
  return n;
}

double LayerTrace::busy(TraceEventKind kind) const {
  double t = 0.0;
  for (const TraceEvent& e : events)
    if (e.kind == kind) t += e.duration();
  return t;
}

void LayerTrace::print(std::ostream& os, std::size_t max_events) const {
  os << "trace of layer '" << layer.name << "': " << events.size()
     << " events, total " << format_time(total_time) << '\n';
  std::size_t shown = 0;
  for (const TraceEvent& e : events) {
    if (shown++ >= max_events) {
      os << "  ... (" << events.size() - max_events << " more)\n";
      break;
    }
    os << "  [" << format_time(e.start) << " .. " << format_time(e.end)
       << "] " << trace_event_name(e.kind) << " loc=" << e.location
       << " units=" << e.units << '\n';
  }
}

void write_chrome_trace(const LayerTrace& trace, std::ostream& os) {
  constexpr TraceEventKind kKinds[] = {
      TraceEventKind::kWeightLoad, TraceEventKind::kRingSettle,
      TraceEventKind::kDramRead,   TraceEventKind::kInputDac,
      TraceEventKind::kOpticalPass, TraceEventKind::kAdcSample,
      TraceEventKind::kSramStage,  TraceEventKind::kDramWrite};
  TraceWriter writer;
  writer.set_process_name(0, "pcnna device: " + trace.layer.name);
  for (std::uint32_t t = 0; t < std::size(kKinds); ++t)
    writer.set_thread_name(0, t, trace_event_name(kKinds[t]));
  for (const TraceEvent& e : trace.events) {
    writer.complete(0, static_cast<std::uint32_t>(e.kind),
                    trace_event_name(e.kind), "device", e.start, e.end,
                    {TraceArg::num("location", static_cast<double>(e.location)),
                     TraceArg::num("units", static_cast<double>(e.units))});
  }
  writer.write(os);
}

TraceSimulator::TraceSimulator(PcnnaConfig config)
    : config_(std::move(config)), scheduler_(config_) {
  config_.validate();
}

LayerTrace TraceSimulator::trace_layer(const nn::ConvLayerParams& layer) const {
  const LayerPlan plan = scheduler_.plan(layer);
  LayerTrace trace;
  trace.layer = layer;

  const double cycle = 1.0 / config_.fast_clock;
  const std::uint64_t word_bytes = (config_.word_bits + 7) / 8;
  const elec::Dram dram(config_.dram);

  // Sweeps: one for the full-kernel allocation, nc channel-major sweeps for
  // the per-channel allocation (each preceded by a retuning episode).
  const bool per_channel = plan.allocation == RingAllocation::kPerChannel;
  const std::uint64_t sweeps = per_channel ? layer.nc : 1;
  const std::uint64_t passes_per_loc = plan.groups.size();
  const std::uint64_t weight_chunk = plan.weight_dac_conversions / sweeps;

  // Per-location stage times within one sweep (mirror TimingModel kFull).
  const std::uint64_t fresh =
      per_channel
          ? std::min<std::uint64_t>(layer.m * layer.s, layer.m * layer.m)
          : std::min<std::uint64_t>(layer.updated_inputs_per_location(),
                                    layer.kernel_size());
  const double t_dac =
      static_cast<double>(ceil_div(fresh, config_.num_input_dacs)) /
      config_.input_dac.sample_rate;
  const double t_opt = static_cast<double>(passes_per_loc) * cycle;
  const double t_adc =
      static_cast<double>(ceil_div(layer.K, config_.num_adcs)) /
      config_.adc.sample_rate;
  const double t_sram =
      static_cast<double>(ceil_div(fresh + layer.K, config_.sram_port_words)) *
      config_.sram.access_time;
  const double ii = std::max({t_dac, t_opt, t_adc, t_sram});

  double now = 0.0;
  for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
    // Ring programming for this sweep.
    const double load_time =
        static_cast<double>(weight_chunk) / config_.weight_dac.sample_rate;
    trace.events.push_back(TraceEvent{TraceEventKind::kWeightLoad, now,
                                      now + load_time, 0, weight_chunk});
    now += load_time;
    trace.events.push_back(TraceEvent{TraceEventKind::kRingSettle, now,
                                      now + config_.ring_settle_time, 0, 1});
    now += config_.ring_settle_time;
    if (sweep == sweeps - 1) trace.weight_load_end = now;

    // Location pipeline: stage s of location L starts at
    // sweep_start + L*II + sum of earlier stage times.
    const double sweep_start = now;
    for (std::uint64_t loc = 0; loc < plan.locations; ++loc) {
      const double base = sweep_start + static_cast<double>(loc) * ii;
      double t = base;
      trace.events.push_back(
          TraceEvent{TraceEventKind::kInputDac, t, t + t_dac, loc, fresh});
      t += t_dac;
      trace.events.push_back(TraceEvent{TraceEventKind::kOpticalPass, t,
                                        t + t_opt, loc, passes_per_loc});
      t += t_opt;
      trace.events.push_back(
          TraceEvent{TraceEventKind::kAdcSample, t, t + t_adc, loc, layer.K});
      t += t_adc;
      trace.events.push_back(TraceEvent{TraceEventKind::kSramStage, t,
                                        t + t_sram, loc, fresh + layer.K});
      t += t_sram;
      now = std::max(now, t);
    }
  }
  trace.compute_end = now;

  // DRAM feature-map traffic streams concurrently with compute, starting
  // after the first weight chunk is in flight.
  const double read_time =
      dram.transfer_time(plan.dram_read_words * word_bytes);
  const double write_time =
      dram.transfer_time(plan.dram_write_words * word_bytes);
  trace.events.push_back(
      TraceEvent{TraceEventKind::kDramRead, 0.0, read_time, 0,
                 plan.dram_read_words});
  trace.events.push_back(TraceEvent{TraceEventKind::kDramWrite, read_time,
                                    read_time + write_time, 0,
                                    plan.dram_write_words});
  trace.total_time = std::max(trace.compute_end, read_time + write_time);
  return trace;
}

} // namespace pcnna::core
