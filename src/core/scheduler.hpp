// Layer scheduler: maps one convolution layer onto the PCNNA hardware.
//
// Decides how a layer's receptive field is split across WDM channel groups
// (segmented bank passes), how many rings the mapping uses, how often banks
// must be recalibrated, and what the on-chip working set and off-chip
// traffic are. The functional engine executes a LayerPlan; the
// full-fidelity timing model prices one.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// One channel-group pass of a layer: contiguous slice of the flattened
/// receptive field [begin, end).
struct GroupSlice {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const { return end - begin; }

  friend bool operator==(const GroupSlice&, const GroupSlice&) = default;
};

/// Complete mapping of one conv layer onto the hardware.
struct LayerPlan {
  nn::ConvLayerParams layer;
  RingAllocation allocation = RingAllocation::kFullKernel;

  /// Wavelengths (= rings per bank segment) used in each pass.
  std::uint64_t group_size = 0;
  /// Sequential bank passes per kernel location (full-kernel) or per
  /// channel step (per-channel).
  std::vector<GroupSlice> groups;

  /// Total rings the mapping occupies (Eq. 5 for full-kernel).
  std::uint64_t rings_total = 0;
  /// Bank recalibration episodes per layer (1 for full-kernel; nc for the
  /// per-channel allocation, which retunes rings between channel passes).
  std::uint64_t recalibrations = 1;
  /// Fast-clock cycles per kernel location (number of sequential passes).
  std::uint64_t cycles_per_location = 1;
  /// Kernel locations (Eq. 6).
  std::uint64_t locations = 0;

  /// SRAM working set in words (the live receptive field).
  std::uint64_t sram_words = 0;
  /// Off-chip reads for the layer in words: inputs + kernel weights.
  std::uint64_t dram_read_words = 0;
  /// Off-chip writes for the layer in words: the output feature map.
  std::uint64_t dram_write_words = 0;
  /// Input-DAC conversions over the whole layer (first location loads the
  /// full receptive field; later ones only nc*m*s fresh values).
  std::uint64_t input_dac_conversions = 0;
  /// Weight-DAC conversions over the whole layer (every weight programmed
  /// once per recalibration episode it participates in).
  std::uint64_t weight_dac_conversions = 0;
  /// ADC conversions over the whole layer (one per kernel per location per
  /// accumulation step that must be digitized).
  std::uint64_t adc_conversions = 0;

  /// Memberwise equality; the planner tests use it to check that cached
  /// strategies are bit-identical to freshly searched ones.
  friend bool operator==(const LayerPlan&, const LayerPlan&) = default;
};

class Scheduler {
 public:
  explicit Scheduler(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  /// Build the mapping for one layer. Throws if the working set cannot fit
  /// the SRAM cache or the layer is degenerate.
  LayerPlan plan(const nn::ConvLayerParams& layer) const;

  /// Plans for a whole conv stack.
  std::vector<LayerPlan> plan_network(
      const std::vector<nn::ConvLayerParams>& layers) const;

 private:
  PcnnaConfig config_;
};

} // namespace pcnna::core
