// Microring count and area model — paper SS V-A (Eqs. 4-5, Fig. 5).
//
// The headline optimization of PCNNA: filtering the non-receptive-field
// values cuts the per-layer ring count from Ninput * K * Nkernel (Eq. 4)
// to K * Nkernel (Eq. 5). The paper's conv4 worked number (3456 rings,
// 2.2 mm^2) corresponds to a per-channel allocation K * m * m
// (DESIGN.md inconsistency #1); both are modeled.
#pragma once

#include <cstdint>
#include <span>

#include "common/units.hpp"
#include "core/config.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

class RingCountModel {
 public:
  /// `ring_pitch` is the square footprint side per ring; the paper uses
  /// 25 um x 25 um per [10].
  explicit RingCountModel(double ring_pitch = 25.0 * units::um);

  double ring_pitch() const { return ring_pitch_; }

  /// Eq. (4): rings without receptive-field filtering =
  /// Ninput * K * Nkernel.
  std::uint64_t unfiltered(const nn::ConvLayerParams& layer) const;

  /// Eq. (5) (full-kernel): rings with filtering = K * Nkernel.
  /// Per-channel allocation: K * m * m.
  std::uint64_t filtered(const nn::ConvLayerParams& layer,
                         RingAllocation allocation =
                             RingAllocation::kFullKernel) const;

  /// unfiltered / filtered for the full-kernel allocation; the paper notes
  /// this equals Ninput (conv1: > 150 000x).
  double savings_factor(const nn::ConvLayerParams& layer) const;

  /// Die area for `rings` microrings [m^2].
  double area(std::uint64_t rings) const;

  /// Sum of filtered ring counts over a set of layers (what a
  /// one-layer-at-a-time PCNNA must provision: the max, not the sum, if the
  /// single physical layer is virtually reused — both are useful).
  std::uint64_t max_filtered(std::span<const nn::ConvLayerParams> layers,
                             RingAllocation allocation =
                                 RingAllocation::kFullKernel) const;

 private:
  double ring_pitch_;
};

} // namespace pcnna::core
