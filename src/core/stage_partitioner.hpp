// Splitting a Network into contiguous pipeline stages balanced by
// channel_split_passes.
//
// PCNNA's serving cost is dominated by weight-bank reprogramming, and the
// only way a resident model stops paying it is to stop reprogramming:
// split the network into contiguous layer ranges, pin each range's weight
// banks on its own PCU, and stream feature maps through the chain
// (runtime::PipelineGroup). The partitioner's job is the deterministic
// split: stage cost is the per-layer capability metric the dispatch
// policies already use — LayerPlan::cycles_per_location, the sequential
// weight-bank passes per kernel location — summed over the range's conv
// layers, and the partition minimizes the maximum stage cost so the
// pipeline's bottleneck stage is as light as possible. Electronic ops
// (ReLU/pool/LRN/...) cost nothing and ride with the conv that produced
// their input, which keeps every DRAM round-trip inside one stage.
//
// Stage-to-PCU assignment is capability-driven: the strongest PCUs (fewest
// whole-model split passes) take the heaviest stages, steering small-core
// PCUs to light stages. Both the partition and the assignment are pure
// integer computations with index tie-breaks, so re-running them after a
// stage PCU is quarantined re-places the stages deterministically.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "nn/network.hpp"

namespace pcnna::core {

/// One contiguous op range [op_begin, op_end) of a Network, with the
/// balance cost the partitioner assigned it (sum of its conv ops' costs).
struct StageRange {
  std::size_t op_begin = 0;
  std::size_t op_end = 0;
  std::size_t cost = 0;
};

/// Deterministic balanced partitioner for pipeline-parallel serving.
class StagePartitioner {
 public:
  /// `config` prices the per-layer costs (ring/WDM budgets change how many
  /// bank passes a layer needs). Use the config of the strongest PCU the
  /// pipeline may run on; assignment handles per-PCU differences.
  explicit StagePartitioner(const PcnnaConfig& config);

  /// Per-op balance cost: LayerPlan::cycles_per_location for conv ops,
  /// 0 for electronic ops (they never touch the weight banks).
  std::vector<std::size_t> op_costs(const nn::Network& net) const;

  /// Split `net` into exactly `stages` contiguous, non-empty op ranges
  /// covering every op, minimizing the maximum stage cost. Each stage
  /// holds at least one conv op; electronic ops attach to the stage of the
  /// conv that feeds them (leading electronic ops join stage 0). Requires
  /// 1 <= stages <= max_stages(net). Deterministic: equal-cost splits
  /// resolve toward the earliest boundaries.
  std::vector<StageRange> partition(const nn::Network& net,
                                    std::size_t stages) const;

  /// Largest usable stage count: the number of conv ops.
  static std::size_t max_stages(const nn::Network& net);

 private:
  Scheduler scheduler_;
};

/// Balanced contiguous partition of raw per-op costs (the partition() core,
/// exposed for testing): split `costs` into `stages` ranges, each holding
/// >= 1 positive-cost op, minimizing the maximum range cost.
std::vector<StageRange> partition_costs(const std::vector<std::size_t>& costs,
                                        std::size_t stages);

/// Map stages onto PCUs: the heaviest stage (ties: lowest stage index)
/// goes to the strongest candidate — fewest whole-model split passes
/// (ties: lowest PCU index). `candidates` are PCU indices; `passes[i]` is
/// candidates[i]'s Pcu::channel_split_passes for the pipelined model.
/// Returns one PCU index per stage. Throws if there are fewer candidates
/// than stages.
std::vector<std::size_t> assign_stages(
    const std::vector<StageRange>& stages,
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& passes);

} // namespace pcnna::core
