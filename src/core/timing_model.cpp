#include "core/timing_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "electronics/dram.hpp"

namespace pcnna::core {

TimingModel::TimingModel(PcnnaConfig config, TimingFidelity fidelity)
    : config_(std::move(config)), fidelity_(fidelity), scheduler_(config_) {
  config_.validate();
}

double TimingModel::updated_inputs_per_dac(
    const nn::ConvLayerParams& layer) const {
  return static_cast<double>(layer.updated_inputs_per_location()) /
         static_cast<double>(config_.num_input_dacs);
}

LayerTiming TimingModel::layer_time(const nn::ConvLayerParams& layer) const {
  switch (fidelity_) {
    case TimingFidelity::kPaper: return layer_time_paper(layer);
    case TimingFidelity::kFull: return layer_time_full(layer);
  }
  throw Error("unknown timing fidelity");
}

LayerTiming TimingModel::layer_time_paper(
    const nn::ConvLayerParams& layer) const {
  layer.validate();
  LayerTiming t;
  t.layer_name = layer.name;
  t.locations = layer.num_locations();

  const double cycle = 1.0 / config_.fast_clock;
  const double locations = static_cast<double>(t.locations);

  // Eq. (7): the whole optical weighting+summation for all K kernels fits in
  // one fast-clock cycle per receptive-field location.
  t.optical_core_time = locations * cycle;

  // Eq. (8): each location needs nc*m*s fresh values spread over NDAC DACs.
  const double dac_per_location =
      updated_inputs_per_dac(layer) / config_.input_dac.sample_rate;
  t.dac_time = locations * dac_per_location;

  // First location fills the whole receptive field through the DACs.
  const double fill =
      static_cast<double>(layer.kernel_size()) /
      static_cast<double>(config_.num_input_dacs) /
      config_.input_dac.sample_rate;

  const double per_location = std::max(cycle, dac_per_location);
  t.full_system_time = fill + locations * per_location;
  t.bottleneck = dac_per_location > cycle ? "input-DAC" : "optical-clock";
  return t;
}

LayerTiming TimingModel::layer_time_full(
    const nn::ConvLayerParams& layer) const {
  const LayerPlan plan = scheduler_.plan(layer);
  LayerTiming t;
  t.layer_name = layer.name;
  t.locations = plan.locations;

  const double cycle = 1.0 / config_.fast_clock;
  const double locations = static_cast<double>(plan.locations);

  // Optical core with WDM segmentation (and per-channel passes if that
  // allocation is selected): cycles_per_location fast cycles per location.
  const double optical_per_loc =
      static_cast<double>(plan.cycles_per_location) * cycle;
  t.optical_core_time = locations * optical_per_loc;

  // Input DACs: fresh values per location, integer samples per DAC.
  const std::uint64_t fresh = std::min<std::uint64_t>(
      layer.updated_inputs_per_location(), layer.kernel_size());
  const double dac_per_loc =
      static_cast<double>(ceil_div(fresh, config_.num_input_dacs)) /
      config_.input_dac.sample_rate;
  t.dac_time = locations * dac_per_loc;

  // ADC: adc_conversions total, serialized over num_adcs converters.
  const double adc_per_loc =
      static_cast<double>(
          ceil_div(plan.adc_conversions / plan.locations, config_.num_adcs)) /
      config_.adc.sample_rate;
  t.adc_time = locations * adc_per_loc;

  // SRAM port: fresh inputs in, K outputs staged out, through a
  // sram_port_words-wide port at the paper's 7 ns access time.
  const std::uint64_t sram_words_per_loc =
      fresh + plan.adc_conversions / plan.locations;
  const double sram_per_loc =
      static_cast<double>(ceil_div(sram_words_per_loc, config_.sram_port_words)) *
      config_.sram.access_time;
  t.sram_time = locations * sram_per_loc;

  // DRAM: all layer traffic at channel bandwidth (overlapped with compute).
  const elec::Dram dram(config_.dram);
  const std::uint64_t word_bytes = (config_.word_bits + 7) / 8;
  t.dram_time = dram.transfer_time(plan.dram_read_words * word_bytes) +
                dram.transfer_time(plan.dram_write_words * word_bytes);

  // Weight programming: every weight through the kernel-weight DAC, plus a
  // thermal settling episode per recalibration.
  t.weight_load_time =
      static_cast<double>(plan.weight_dac_conversions) /
          config_.weight_dac.sample_rate +
      static_cast<double>(plan.recalibrations) * config_.ring_settle_time;

  // Steady-state pipeline: the slowest per-location stage sets the rate;
  // add one pipeline fill of all stages.
  const double stage_max =
      std::max({optical_per_loc, dac_per_loc, adc_per_loc, sram_per_loc});
  const double fill = optical_per_loc + dac_per_loc + adc_per_loc + sram_per_loc;
  const double compute = locations * stage_max + fill;

  // Weight programming precedes compute; DRAM traffic (which already
  // includes the weight words) streams concurrently with both. The
  // event-driven TraceSimulator follows the same schedule and the two are
  // cross-checked in tests.
  t.full_system_time = std::max(compute + t.weight_load_time, t.dram_time);

  // Name the dominant constraint.
  struct Candidate {
    double value;
    const char* name;
  };
  const Candidate candidates[] = {
      {locations * optical_per_loc, "optical-clock"},
      {t.dac_time, "input-DAC"},
      {t.adc_time, "ADC"},
      {t.sram_time, "SRAM"},
      {t.dram_time, "DRAM"},
      {t.weight_load_time, "weight-load"},
  };
  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates)
    if (c.value > best->value) best = &c;
  t.bottleneck = best->name;
  return t;
}

NetworkTiming TimingModel::network_time(
    const std::vector<nn::ConvLayerParams>& layers) const {
  NetworkTiming net;
  net.layers.reserve(layers.size());
  for (const nn::ConvLayerParams& layer : layers) {
    net.layers.push_back(layer_time(layer));
    net.total_optical_core += net.layers.back().optical_core_time;
    net.total_full_system += net.layers.back().full_system_time;
  }
  return net;
}

} // namespace pcnna::core
