#include "core/chip_report.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/ring_count.hpp"
#include "core/scheduler.hpp"
#include "photonics/laser.hpp"

namespace pcnna::core {

ChipReportModel::ChipReportModel(PcnnaConfig config)
    : config_(std::move(config)) {
  config_.validate();
}

ChipBudget ChipReportModel::budget_for_rings(std::uint64_t rings,
                                             std::uint64_t wavelengths) const {
  ChipBudget b;
  b.rings = rings;
  b.wavelengths = wavelengths;

  const double ring_pitch = config_.bank.ring.footprint_side;
  b.ring_area = static_cast<double>(rings) * ring_pitch * ring_pitch;
  b.dac_area = static_cast<double>(config_.num_input_dacs) *
                   config_.input_dac.area +
               config_.weight_dac.area;
  b.adc_area = static_cast<double>(config_.num_adcs) * config_.adc.area;
  b.sram_area = config_.sram.area;

  const phot::LaserDiode laser(config_.laser);
  b.laser_power =
      static_cast<double>(wavelengths) * laser.electrical_power();
  // Worst case: every ring driven to max detuning.
  b.heater_power = static_cast<double>(rings) * config_.bank.ring.max_detuning /
                   config_.bank.ring.thermal_efficiency;
  b.dac_power = static_cast<double>(config_.num_input_dacs) *
                    config_.input_dac.power +
                config_.weight_dac.power;
  b.adc_power = static_cast<double>(config_.num_adcs) * config_.adc.power;
  b.sram_power = config_.sram.retention_power;
  return b;
}

ChipBudget ChipReportModel::layer_budget(
    const nn::ConvLayerParams& layer) const {
  const Scheduler scheduler(config_);
  const LayerPlan plan = scheduler.plan(layer);
  return budget_for_rings(plan.rings_total, plan.group_size);
}

ChipBudget ChipReportModel::network_budget(
    const std::vector<nn::ConvLayerParams>& layers) const {
  PCNNA_CHECK(!layers.empty());
  const Scheduler scheduler(config_);
  std::uint64_t max_rings = 0;
  std::uint64_t max_wavelengths = 0;
  for (const nn::ConvLayerParams& layer : layers) {
    const LayerPlan plan = scheduler.plan(layer);
    max_rings = std::max(max_rings, plan.rings_total);
    max_wavelengths = std::max(max_wavelengths, plan.group_size);
  }
  return budget_for_rings(max_rings, max_wavelengths);
}

} // namespace pcnna::core
