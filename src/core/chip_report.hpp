// Whole-chip area and peak-power budget (extension beyond the paper).
//
// Aggregates the component specs the paper cites — DAC area [16], ADC area
// [17], SRAM footprint [15], 25 um ring pitch [10] — plus laser wall-plug
// and heater power into a single design-point budget for the shared
// (virtually reused) PCNNA core.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// Area/power budget for one PCNNA design point.
struct ChipBudget {
  // --- sizing inputs ---
  std::uint64_t rings = 0;        ///< shared-core ring count (largest layer)
  std::uint64_t wavelengths = 0;  ///< lasers/MZMs provisioned (WDM budget)

  // --- area [m^2] ---
  double ring_area = 0.0;
  double dac_area = 0.0;   ///< input DACs + kernel-weight DAC
  double adc_area = 0.0;
  double sram_area = 0.0;
  double total_area() const {
    return ring_area + dac_area + adc_area + sram_area;
  }

  // --- peak power [W] ---
  double laser_power = 0.0;   ///< electrical (wall-plug) draw of the combs
  double heater_power = 0.0;  ///< worst-case thermal tuning
  double dac_power = 0.0;
  double adc_power = 0.0;
  double sram_power = 0.0;    ///< retention
  double total_power() const {
    return laser_power + heater_power + dac_power + adc_power + sram_power;
  }
};

class ChipReportModel {
 public:
  explicit ChipReportModel(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  /// Budget for a core sized to run every layer of `layers` (paper SS IV:
  /// one physical layer's worth of hardware, virtually reused — provision
  /// for the largest layer under the configured allocation).
  ChipBudget network_budget(
      const std::vector<nn::ConvLayerParams>& layers) const;

  /// Budget for a core sized to exactly one layer.
  ChipBudget layer_budget(const nn::ConvLayerParams& layer) const;

 private:
  ChipBudget budget_for_rings(std::uint64_t rings,
                              std::uint64_t wavelengths) const;
  PcnnaConfig config_;
};

} // namespace pcnna::core
