// Functional simulation of the PCNNA optical core.
//
// Computes a convolution by actually pushing values through the photonic
// component models: inputs are DAC-quantized, imprinted on WDM laser
// channels by MZMs, weighted by calibrated microring banks, summed on
// balanced photodiodes (with RIN/shot/thermal noise), digitized by the ADC,
// and rescaled electronically. Under PcnnaConfig::ideal() the result matches
// the golden CPU convolution to near machine precision; under
// paper_defaults() it quantifies the analog error budget.
//
// Execution follows the paper SS IV exactly: all K kernels are evaluated in
// parallel for one receptive-field location, locations run sequentially,
// and receptive fields wider than the WDM budget are split into segmented
// bank passes whose balanced-photodiode currents wire-sum in analog
// (full-kernel allocation) or into per-channel passes with electronic
// partial-sum accumulation (per-channel allocation).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "nn/tensor.hpp"

namespace pcnna::core {

/// Bookkeeping from one engine convolution.
struct EngineStats {
  std::uint64_t locations = 0;
  std::uint64_t optical_passes = 0;    ///< bank passes (fast-clock events)
  std::uint64_t dac_conversions = 0;   ///< input-DAC samples (plan-level)
  std::uint64_t adc_conversions = 0;   ///< output samples digitized
  std::uint64_t weight_dac_conversions = 0;
  std::uint64_t recalibrations = 0;    ///< bank retuning episodes
  std::uint64_t banks_built = 0;
  std::uint64_t rings_used = 0;        ///< total rings in the mapping
  std::uint64_t wavelengths_used = 0;  ///< WDM channels per pass
  std::uint64_t stuck_rings = 0;       ///< injected heater faults
  double mean_calibration_error = 0.0; ///< mean |w_eff - w_target|
  double max_calibration_error = 0.0;
  double total_heater_power = 0.0;     ///< [W] summed over all banks
  double total_ring_area = 0.0;        ///< [m^2]
};

class OpticalConvEngine {
 public:
  explicit OpticalConvEngine(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  /// Photonic convolution with the same contract as nn::conv2d_direct:
  /// `input` [1, C, H, W] (values must be >= 0 — photonic amplitude
  /// encoding; normalize or ReLU first), `weights` [K, C, m, m], optional
  /// `bias` [1, K, 1, 1]. Returns [1, K, Ho, Wo].
  nn::Tensor conv2d(const nn::Tensor& input, const nn::Tensor& weights,
                    const nn::Tensor& bias, std::size_t stride,
                    std::size_t pad, EngineStats* stats = nullptr);

  /// Photonic fully-connected layer (the original broadcast-and-weight use
  /// case, Tait et al.): `weights` [out, in, 1, 1], `bias` [1, out, 1, 1]
  /// (optional), input flattened and non-negative. The input vector maps
  /// onto WDM channel groups; one bank per output neuron; group partial
  /// sums wire-sum in analog before one ADC sample per output.
  nn::Tensor fully_connected(const nn::Tensor& input,
                             const nn::Tensor& weights,
                             const nn::Tensor& bias,
                             EngineStats* stats = nullptr);

  /// Reset the internal noise/fabrication RNG to the config seed (makes two
  /// runs bit-identical).
  void reset_rng() { rng_.reseed(config_.seed); }

  /// Reseed the noise/fabrication RNG to an explicit seed. The batch runtime
  /// reseeds per request so a request's output is the same no matter which
  /// PCU serves it or in what order.
  void reseed_rng(std::uint64_t seed) { rng_.reseed(seed); }

 private:
  nn::Tensor run_full_kernel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);
  nn::Tensor run_per_channel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);

  PcnnaConfig config_;
  Rng rng_;
};

} // namespace pcnna::core
