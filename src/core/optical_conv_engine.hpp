// Functional simulation of the PCNNA optical core.
//
// Computes a convolution by actually pushing values through the photonic
// component models: inputs are DAC-quantized, imprinted on WDM laser
// channels by MZMs, weighted by calibrated microring banks, summed on
// balanced photodiodes (with RIN/shot/thermal noise), digitized by the ADC,
// and rescaled electronically. Under PcnnaConfig::ideal() the result matches
// the golden CPU convolution to near machine precision; under
// paper_defaults() it quantifies the analog error budget.
//
// Execution follows the paper SS IV exactly: all K kernels are evaluated in
// parallel for one receptive-field location, locations run sequentially,
// and receptive fields wider than the WDM budget are split into segmented
// bank passes whose balanced-photodiode currents wire-sum in analog
// (full-kernel allocation) or into per-channel passes with electronic
// partial-sum accumulation (per-channel allocation).
//
// Hot-path organization (PR 3 rewrite; docs/architecture.md "Engine hot
// path" has the full argument):
//
//  * patch streaming — the DAC quantization and MZM transfer of every input
//    element are evaluated once per layer into a lookup table, and the
//    per-pixel receptive field becomes a precomputed im2col-style index
//    gather; nothing per-pixel re-derives per-element values;
//  * layer-lifetime scratch — every buffer the per-pixel loop touches lives
//    in an EngineScratch owned by the engine and reused across pixels,
//    layers, and conv2d calls; the oy/ox loops allocate nothing;
//  * structure-of-arrays bank programs — calibrated bank responses are
//    flattened into transposed drop/through arrays so the per-pixel MAC is
//    a branch-free linear pass over contiguous memory with K independent
//    accumulation chains;
//  * optional deterministic intra-image parallelism — kernel locations are
//    partitioned into fixed tiles across PcnnaConfig::engine_threads
//    workers. Outputs are bit-identical for every thread count: per-pixel
//    accumulation order is unchanged, and with noise enabled the per-pixel
//    RNG draws are pre-generated in sequential pixel order before the tiles
//    fan out (tests/test_engine_hot_path.cpp proves A/B bit-identity
//    against the frozen pre-rewrite engine in engine_reference.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "nn/tensor.hpp"

namespace pcnna::core {

/// Bookkeeping from one engine convolution.
struct EngineStats {
  std::uint64_t locations = 0;
  std::uint64_t optical_passes = 0;    ///< bank passes (fast-clock events)
  std::uint64_t dac_conversions = 0;   ///< input-DAC samples (plan-level)
  std::uint64_t adc_conversions = 0;   ///< output samples digitized
  /// Kernel-location patches streamed through the engine pixel sweep, one
  /// per sweep_pixels location (the per-channel path streams every patch
  /// once per input channel). Filled by the streaming engine only; the
  /// frozen reference engine leaves it zero.
  std::uint64_t patches_streamed = 0;
  /// Noise-source draws consumed by the pixel sweep (shot/thermal/branch
  /// noise): pixels * draws_per_pixel when noise is enabled, zero on the
  /// ideal config. A pure function of the layer plan — independent of
  /// engine_threads by the pre-drawn parallel noise contract.
  std::uint64_t noise_draws = 0;
  std::uint64_t weight_dac_conversions = 0;
  std::uint64_t recalibrations = 0;    ///< bank retuning episodes
  std::uint64_t banks_built = 0;
  std::uint64_t rings_used = 0;        ///< total rings in the mapping
  std::uint64_t wavelengths_used = 0;  ///< WDM channels per pass
  std::uint64_t stuck_rings = 0;       ///< injected heater faults
  double mean_calibration_error = 0.0; ///< mean |w_eff - w_target|
  double max_calibration_error = 0.0;
  double total_heater_power = 0.0;     ///< [W] summed over all banks
  double total_ring_area = 0.0;        ///< [m^2]
};

/// Failure injection: freeze each ring's heater at its parked drive with
/// probability PcnnaConfig::stuck_ring_rate.
///
/// Draw-order contract (pinned by EngineRngContract tests): when
/// stuck_ring_rate > 0 this consumes exactly one rng.uniform() per ring, in
/// ascending ring index, regardless of whether the ring ends up stuck; when
/// stuck_ring_rate <= 0 it consumes nothing. The engine calls it only
/// during sequential layer setup (bank construction order), never from the
/// pixel loops, so intra-image parallelism cannot perturb fault patterns.
void inject_stuck_faults(const PcnnaConfig& cfg, phot::WeightBank& bank,
                         Rng& rng, EngineStats& st);

/// Empirically measure the symmetric weight range a bank of `channels`
/// rings can represent: program every ring to the positive/negative
/// extreme and probe the middle channel. Accounts for the cumulative
/// through-path insertion loss and crosstalk that the single-ring closed
/// form misses.
///
/// Draw-order contract (pinned by EngineRngContract tests): consumes
/// exactly the fabrication draws of constructing one `channels`-ring bank —
/// one rng.normal() per ring in ascending ring index when
/// bank.ring.fab_sigma > 0, nothing otherwise. The probe calibrations and
/// weight queries draw nothing. Called once per conv2d invocation, before
/// any layer banks are built.
double measured_usable_range(const PcnnaConfig& cfg, std::size_t channels,
                             Rng& rng);

/// Re-probe variant over an *existing* bank: same hi/lo middle-channel
/// probe as above, but against `bank`'s current physical state — stuck
/// rings (WeightBank::fail_ring, inject_stuck_faults) and accumulated
/// fabrication disorder included — instead of constructing a pristine one.
/// Draws nothing; the probe is two calibrations plus weight queries. The
/// bank's programmed weights are clobbered (it ends at the all-negative
/// extreme); recalibrate afterwards if the bank is still in service.
double measured_usable_range(phot::WeightBank& bank);

/// Layer-lifetime scratch of the engine hot path. Owned by the engine and
/// reused across conv2d calls; per-layer precomputes are rebuilt at the top
/// of each call, per-worker buffers are resized (capacity persists) and
/// nothing inside the per-pixel loops allocates.
struct EngineScratch {
  // --- per-layer precomputes (patch-streaming pipeline) ---
  /// MZM transmit fraction of every input element after normalization and
  /// (optional) input-DAC quantization; evaluated once per layer.
  std::vector<double> transfer;
  /// Transmit fraction of a zero-padded element.
  double transfer_pad = 0.0;
  /// im2col-style gather map: for output pixel p and flattened
  /// receptive-field position r, patch[p * n_kernel + r] is the flat input
  /// element index, or -1 for zero padding. Receptive-field order matches
  /// nn::receptive_field (channel-major, then ky, then kx).
  std::vector<std::int32_t> patch;
  /// Transposed structure-of-arrays bank programs: for group g, channel i,
  /// kernel k, the drop/through response lives at
  /// group_base[g] + i * K + k (contiguous in k so the per-pixel MAC keeps
  /// K independent accumulation chains on contiguous memory).
  std::vector<double> drop_t, thru_t;
  /// Balanced baseline current per (group, kernel): baseline[g * K + k].
  std::vector<double> baseline;
  std::vector<std::size_t> group_base;
  /// Pre-drawn standard normals for the parallel noisy path, in sequential
  /// pixel order (see docs/architecture.md for the determinism argument).
  std::vector<double> noise_z;

  // --- calibration staging (layer setup only) ---
  std::vector<double> targets;
  std::vector<phot::WeightBank::ChannelSplit> splits;

  // --- per-worker hot-loop buffers ---
  struct Worker {
    std::vector<double> powers;          ///< modulated powers of one group
    std::vector<double> drop_acc;        ///< per-kernel drop-bus dot product
    std::vector<double> thru_acc;        ///< per-kernel through-bus dot product
    std::vector<double> acc;             ///< per-kernel normalized MAC
    std::uint64_t optical_passes = 0;
    std::uint64_t adc_conversions = 0;
  };
  std::vector<Worker> workers;
};

class OpticalConvEngine {
 public:
  explicit OpticalConvEngine(PcnnaConfig config);

  const PcnnaConfig& config() const { return config_; }

  /// Photonic convolution with the same contract as nn::conv2d_direct:
  /// `input` [1, C, H, W] (values must be >= 0 — photonic amplitude
  /// encoding; normalize or ReLU first), `weights` [K, C, m, m], optional
  /// `bias` [1, K, 1, 1]. Returns [1, K, Ho, Wo].
  nn::Tensor conv2d(const nn::Tensor& input, const nn::Tensor& weights,
                    const nn::Tensor& bias, std::size_t stride,
                    std::size_t pad, EngineStats* stats = nullptr);

  /// Photonic fully-connected layer (the original broadcast-and-weight use
  /// case, Tait et al.): `weights` [out, in, 1, 1], `bias` [1, out, 1, 1]
  /// (optional), input flattened and non-negative. The input vector maps
  /// onto WDM channel groups; one bank per output neuron; group partial
  /// sums wire-sum in analog before one ADC sample per output.
  nn::Tensor fully_connected(const nn::Tensor& input,
                             const nn::Tensor& weights,
                             const nn::Tensor& bias,
                             EngineStats* stats = nullptr);

  /// Reset the internal noise/fabrication RNG to the config seed (makes two
  /// runs bit-identical).
  void reset_rng() { rng_.reseed(config_.seed); }

  /// Reseed the noise/fabrication RNG to an explicit seed. The batch runtime
  /// reseeds per request so a request's output is the same no matter which
  /// PCU serves it or in what order.
  void reseed_rng(std::uint64_t seed) { rng_.reseed(seed); }

  /// Snapshot the noise/fabrication RNG mid-stream. The pipelined serving
  /// runtime captures the state after one stage's layer range and restores
  /// it on the next stage's PCU, so a split run draws exactly the values a
  /// whole-network run from the same request seed would.
  Rng::State rng_state() const { return rng_.state(); }

  /// Restore a snapshot taken with rng_state().
  void set_rng_state(const Rng::State& state) { rng_.set_state(state); }

 private:
  nn::Tensor run_full_kernel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);
  nn::Tensor run_per_channel(const LayerPlan& plan, const nn::Tensor& input,
                             const nn::Tensor& weights, const nn::Tensor& bias,
                             EngineStats& stats);

  /// Decide the worker count for one layer's pixel sweep and make the pool
  /// and per-worker scratch (sized for `group_size` channels and K kernel
  /// accumulators) match it.
  std::size_t prepare_workers(std::size_t pixels, bool fixed_draw_count,
                              std::size_t group_size, std::size_t K);

  PcnnaConfig config_;
  Rng rng_;
  EngineScratch scratch_;
  std::unique_ptr<ThreadPool> pool_;
};

} // namespace pcnna::core
