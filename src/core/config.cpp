#include "core/config.hpp"

#include "common/error.hpp"

namespace pcnna::core {

const char* ring_allocation_name(RingAllocation allocation) {
  switch (allocation) {
    case RingAllocation::kFullKernel: return "full-kernel";
    case RingAllocation::kPerChannel: return "per-channel";
  }
  return "?";
}

const char* timing_fidelity_name(TimingFidelity fidelity) {
  switch (fidelity) {
    case TimingFidelity::kPaper: return "paper";
    case TimingFidelity::kFull: return "full";
  }
  return "?";
}

PcnnaConfig PcnnaConfig::paper_defaults() {
  PcnnaConfig cfg;
  // Defaults in the member initializers already encode the paper's
  // component specs; restate the headline ones for clarity.
  cfg.fast_clock = 5.0 * units::GHz;
  cfg.num_input_dacs = 10;
  cfg.input_dac.sample_rate = 6.0 * units::GSa; // [16]
  cfg.input_dac.bits = 16;
  cfg.weight_dac = cfg.input_dac;
  cfg.num_adcs = 1;
  cfg.adc.sample_rate = 2.8 * units::GSa; // [17]
  cfg.validate();
  return cfg;
}

PcnnaConfig PcnnaConfig::ideal() {
  PcnnaConfig cfg = paper_defaults();
  cfg.enable_noise = false;
  cfg.enable_quantization = false;
  cfg.bank.model_crosstalk = false;
  cfg.bank.ring.q_factor = 2.0e6;       // razor-thin linewidth
  cfg.bank.ring.max_drop = 1.0 - 1e-9;  // full on-resonance drop
  cfg.bank.ring.insertion_loss_db = 0.0;
  cfg.bank.ring.tuning_bits = 44;
  cfg.bank.ring.max_detuning = 1.55 * units::nm; // 2000 linewidths at Q = 2e6
  cfg.bank.ring.fab_sigma = 0.0;
  cfg.bank.photodiode.enable_shot_noise = false;
  cfg.bank.photodiode.enable_thermal_noise = false;
  cfg.bank.photodiode.dark_current = 0.0;
  cfg.mzm.insertion_loss_db = 0.0;
  cfg.mzm.extinction_ratio_db = 200.0;
  cfg.validate();
  return cfg;
}

PcnnaConfig PcnnaConfig::small_core() {
  PcnnaConfig cfg = paper_defaults();
  // Per-channel ring allocation (the paper's conv4 worked configuration):
  // banks hold K * m * m rings instead of K * Nkernel, at the price of nc
  // sequential channel passes — and nc thermal-settle recalibration
  // episodes — per layer. This is what actually makes a small PCU slow:
  // the retuning settle dominates the double-buffered request interval.
  cfg.allocation = RingAllocation::kPerChannel;
  cfg.max_wavelengths = 24;
  cfg.num_input_dacs = 4;
  cfg.validate();
  return cfg;
}

void PcnnaConfig::validate() const {
  PCNNA_CHECK(fast_clock > 0.0 && io_clock > 0.0);
  PCNNA_CHECK(num_input_dacs >= 1);
  PCNNA_CHECK(num_adcs >= 1);
  PCNNA_CHECK(word_bits >= 1);
  PCNNA_CHECK(sram_port_words >= 1);
  PCNNA_CHECK(max_wavelengths >= 1);
  PCNNA_CHECK(adc_headroom > 0.0);
  PCNNA_CHECK(stuck_ring_rate >= 0.0 && stuck_ring_rate <= 1.0);
  PCNNA_CHECK(engine_threads >= 1);
}

} // namespace pcnna::core
