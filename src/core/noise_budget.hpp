// Closed-form analog noise budget (extension beyond the paper).
//
// The paper treats the optical MAC as exact; this model predicts, per layer
// and per fast-clock pass, the photocurrent noise of the balanced detector
// (RIN + shot + thermal over the detection bandwidth) referred back to
// normalized MAC units, and the resulting signal-to-noise ratio. The
// functional simulator (OpticalConvEngine) must agree with these
// predictions — tests cross-validate the two — so architects can sweep the
// budget without running the full simulation.
//
// Conventions match OpticalConvEngine: inputs x' in [0, 1] (RMS x_rms),
// weights w' in [-1, 1] (RMS w_rms), one unit of normalized MAC produces
// `denom_current` amps at the balanced photodiode.
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// Per-layer noise breakdown. Currents in amps; MAC quantities are in
/// normalized MAC units (sum of x'*w' terms).
struct NoiseBudget {
  std::string layer_name;
  double denom_current = 0.0;     ///< amps per unit normalized MAC
  double mean_branch_current = 0.0; ///< mean photocurrent per PD branch [A]

  double sigma_rin = 0.0;     ///< current noise per pass from laser RIN [A]
  double sigma_shot = 0.0;    ///< shot-noise current per pass [A]
  double sigma_thermal = 0.0; ///< Johnson-noise current per pass [A]
  double sigma_pass = 0.0;    ///< total current sigma per bank pass [A]

  double mac_sigma = 0.0;     ///< MAC-referred noise across all passes
  double adc_quantization_sigma = 0.0; ///< MAC-referred, lsb/sqrt(12)
  double mac_rms = 0.0;       ///< RMS of the layer's normalized MAC values
  double snr_db = 0.0;        ///< 20*log10(mac_rms / total sigma)

  const char* dominant_source = ""; ///< "RIN" | "shot" | "thermal" | "ADC"

  /// Total MAC-referred sigma (analog + quantization, independent sources).
  double total_mac_sigma() const;
};

/// Input/weight distribution assumptions for the closed forms. Defaults
/// match the synthetic generators (x ~ U[0,1); w He-scaled, normalized).
struct SignalStats {
  double x_rms = 0.577;  ///< sqrt(E[x'^2]) for x' ~ U[0,1)
  double x_mean = 0.5;   ///< E[x']
  double w_rms = 0.28;   ///< sqrt(E[w'^2]) after normalization to [-1,1]
};

class NoiseBudgetModel {
 public:
  explicit NoiseBudgetModel(PcnnaConfig config, SignalStats stats = {});

  const PcnnaConfig& config() const { return config_; }
  const SignalStats& stats() const { return stats_; }

  /// Budget for one conv layer under the configured allocation.
  NoiseBudget layer_budget(const nn::ConvLayerParams& layer) const;

  /// Budget for an explicit (channels-per-pass, passes, fanout) mapping —
  /// the primitive layer_budget() builds on.
  NoiseBudget pass_budget(std::size_t channels_per_pass, std::size_t passes,
                          std::size_t fanout, std::size_t n_kernel) const;

 private:
  PcnnaConfig config_;
  SignalStats stats_;
};

} // namespace pcnna::core
