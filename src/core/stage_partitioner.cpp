#include "core/stage_partitioner.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace pcnna::core {

StagePartitioner::StagePartitioner(const PcnnaConfig& config)
    : scheduler_(config) {}

std::vector<std::size_t> StagePartitioner::op_costs(
    const nn::Network& net) const {
  std::vector<std::size_t> costs(net.ops().size(), 0);
  for (std::size_t i = 0; i < net.ops().size(); ++i) {
    const nn::LayerOp& op = net.ops()[i];
    if (op.kind == nn::OpKind::kConv)
      costs[i] = scheduler_.plan(op.conv).cycles_per_location;
  }
  return costs;
}

std::size_t StagePartitioner::max_stages(const nn::Network& net) {
  std::size_t convs = 0;
  for (const nn::LayerOp& op : net.ops())
    if (op.kind == nn::OpKind::kConv) convs += 1;
  return convs;
}

std::vector<StageRange> StagePartitioner::partition(const nn::Network& net,
                                                    std::size_t stages) const {
  return partition_costs(op_costs(net), stages);
}

std::vector<StageRange> partition_costs(const std::vector<std::size_t>& costs,
                                        std::size_t stages) {
  // The partition runs over the positive-cost (conv) ops; zero-cost ops
  // between them are glued to the preceding conv's stage afterwards.
  std::vector<std::size_t> items; // op index of each positive-cost op
  for (std::size_t i = 0; i < costs.size(); ++i)
    if (costs[i] > 0) items.push_back(i);
  const std::size_t m = items.size();
  PCNNA_CHECK_MSG(stages >= 1 && stages <= m,
                  "cannot split " << m << " conv ops into " << stages
                                  << " pipeline stages");

  // Prefix sums over item costs for O(1) range sums.
  std::vector<std::size_t> prefix(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i)
    prefix[i + 1] = prefix[i] + costs[items[i]];
  const auto range_cost = [&](std::size_t lo, std::size_t hi) {
    return prefix[hi] - prefix[lo];
  };

  // Classic linear-partition DP: best[j][i] = minimal achievable maximum
  // range cost splitting the first i items into j ranges. m is the conv
  // count of one network, so O(stages * m^2) is trivial.
  constexpr std::size_t kInf = std::numeric_limits<std::size_t>::max();
  std::vector<std::vector<std::size_t>> best(
      stages + 1, std::vector<std::size_t>(m + 1, kInf));
  best[0][0] = 0;
  for (std::size_t j = 1; j <= stages; ++j) {
    for (std::size_t i = j; i + (stages - j) <= m; ++i) {
      for (std::size_t t = j - 1; t < i; ++t) {
        if (best[j - 1][t] == kInf) continue;
        const std::size_t candidate =
            std::max(best[j - 1][t], range_cost(t, i));
        best[j][i] = std::min(best[j][i], candidate);
      }
    }
  }

  // Reconstruct boundaries back to front, taking the *smallest* split
  // point that achieves the optimum at every step — a total deterministic
  // order over equal-cost partitions (work drifts toward later stages,
  // whose pins a streaming pipeline pays latest).
  std::vector<std::size_t> bounds(stages + 1, m); // item-index boundaries
  bounds[0] = 0;
  std::size_t hi = m;
  for (std::size_t j = stages; j >= 1; --j) {
    std::size_t pick = hi;
    for (std::size_t t = j - 1; t < hi; ++t) {
      if (best[j - 1][t] == kInf) continue;
      if (std::max(best[j - 1][t], range_cost(t, hi)) == best[j][hi]) {
        pick = t;
        break;
      }
    }
    PCNNA_CHECK_MSG(pick < hi, "stage partition reconstruction failed");
    bounds[j - 1] = pick;
    hi = pick;
  }

  // Convert item boundaries to op ranges: stage j spans from its first
  // conv op (stage 0: op 0, catching leading electronic ops) to just
  // before stage j+1's first conv op (last stage: the end of the net).
  std::vector<StageRange> ranges(stages);
  for (std::size_t j = 0; j < stages; ++j) {
    ranges[j].op_begin = j == 0 ? 0 : items[bounds[j]];
    ranges[j].op_end = j + 1 == stages ? costs.size() : items[bounds[j + 1]];
    ranges[j].cost = range_cost(bounds[j], bounds[j + 1]);
  }
  return ranges;
}

std::vector<std::size_t> assign_stages(
    const std::vector<StageRange>& stages,
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& passes) {
  PCNNA_CHECK_MSG(candidates.size() == passes.size(),
                  "assign_stages: candidates and passes disagree ("
                      << candidates.size() << " vs " << passes.size() << ")");
  PCNNA_CHECK_MSG(candidates.size() >= stages.size(),
                  "assign_stages: " << stages.size() << " stages but only "
                                    << candidates.size() << " candidate PCUs");

  // Stages by descending cost (ties: lowest stage index first).
  std::vector<std::size_t> stage_order(stages.size());
  std::iota(stage_order.begin(), stage_order.end(), 0);
  std::sort(stage_order.begin(), stage_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (stages[a].cost != stages[b].cost)
                return stages[a].cost > stages[b].cost;
              return a < b;
            });

  // Candidates by ascending whole-model passes — strongest first (ties:
  // lowest PCU index).
  std::vector<std::size_t> cand_order(candidates.size());
  std::iota(cand_order.begin(), cand_order.end(), 0);
  std::sort(cand_order.begin(), cand_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (passes[a] != passes[b]) return passes[a] < passes[b];
              return candidates[a] < candidates[b];
            });

  std::vector<std::size_t> placement(stages.size(), 0);
  for (std::size_t i = 0; i < stages.size(); ++i)
    placement[stage_order[i]] = candidates[cand_order[i]];
  return placement;
}

} // namespace pcnna::core
