// Full-system PCNNA accelerator simulator.
//
// Runs a whole CNN the way the paper's architecture does (SS IV): conv
// layers execute on the (virtually reused) optical core, layer by layer,
// with feature maps round-tripping through off-chip DRAM; everything else
// (ReLU, pooling, LRN, FC, softmax) runs in the electronic domain. Produces
// per-layer timing, energy, and engine statistics, plus numerical-fidelity
// metrics against the golden CPU reference.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/energy_model.hpp"
#include "core/optical_conv_engine.hpp"
#include "core/scheduler.hpp"
#include "core/timing_model.hpp"
#include "nn/network.hpp"
#include "nn/tensor.hpp"

namespace pcnna::core {

/// Results for one conv layer of a network run.
struct LayerRunReport {
  std::string layer_name;
  LayerTiming timing;      ///< at the accelerator's configured fidelity
  EnergyReport energy;
  EngineStats engine;      ///< zeros when values were not simulated
  /// Engine output vs golden conv on the same layer input (functional runs).
  double rmse_vs_reference = 0.0;
  double max_abs_err_vs_reference = 0.0;
};

/// Results for a whole network run.
struct NetworkRunReport {
  std::vector<LayerRunReport> conv_layers;
  /// Filled when PcnnaConfig::accelerate_fc is set: FC layers offloaded to
  /// the optical core (modeled as 1x1 convs on a 1x1 feature map).
  std::vector<LayerRunReport> fc_layers;
  nn::Tensor output;          ///< network output (simulated path)
  nn::Tensor reference_output;///< golden CPU output (when compared)
  double total_optical_core_time = 0.0;
  double total_full_system_time = 0.0;
  double total_energy = 0.0;
  /// Final-output fidelity (cumulative error through the whole net).
  double output_rmse = 0.0;
  double output_max_abs_err = 0.0;
  /// True when simulated and reference argmax agree (classification nets).
  bool argmax_match = true;
};

class Accelerator {
 public:
  explicit Accelerator(PcnnaConfig config,
                       TimingFidelity fidelity = TimingFidelity::kPaper);

  const PcnnaConfig& config() const { return config_; }

  /// Reseed the functional engine's noise/fabrication RNG. The batch
  /// runtime calls this with a per-request seed before each run() so that
  /// results are independent of request ordering and PCU assignment.
  void reseed_engine(std::uint64_t seed) { engine_.reseed_rng(seed); }

  /// Snapshot / restore the engine RNG mid-network. Pipelined serving runs
  /// a network as contiguous op ranges on different PCUs; carrying the RNG
  /// state across the stage boundary keeps the split run bit-identical to
  /// a whole-network run from the same request seed (the engine draws
  /// noise/fabrication values strictly in layer order).
  Rng::State engine_rng_state() const { return engine_.rng_state(); }
  void set_engine_rng_state(const Rng::State& state) {
    engine_.set_rng_state(state);
  }

  /// Run one conv layer functionally on the optical core.
  nn::Tensor run_conv(const nn::Tensor& input, const nn::Tensor& weights,
                      const nn::Tensor& bias, std::size_t stride,
                      std::size_t pad, LayerRunReport* report = nullptr);

  /// Run a network end to end.
  ///
  /// `simulate_values == true` pushes every conv through the photonic
  /// functional model (slow, exact error accounting); `false` computes conv
  /// values with the golden CPU path but still produces the full timing /
  /// energy / plan reports (fast, for large nets).
  /// `compare_reference` additionally runs the pure CPU reference and fills
  /// the fidelity metrics.
  NetworkRunReport run(const nn::Network& net, const nn::NetWeights& weights,
                       const nn::Tensor& input, bool simulate_values = true,
                       bool compare_reference = true);

  /// Run the contiguous op range [op_begin, op_end) — one pipeline stage.
  /// `input` must match net.shape_before(op_begin); the report's output is
  /// the activation leaving op_end - 1. run() is exactly
  /// run_range(0, ops.size()) plus the whole-network reference comparison;
  /// ranges carry no reference metrics (the golden prefix is not replayed).
  NetworkRunReport run_range(const nn::Network& net,
                             const nn::NetWeights& weights,
                             const nn::Tensor& input, std::size_t op_begin,
                             std::size_t op_end, bool simulate_values = true);

  // Batch timing lives in runtime::BatchRunner / FleetReport: the old
  // Accelerator::run_batch / BatchReport pair was deprecated in PR 3 and
  // deleted in PR 4 (ROADMAP deprecation plan step 3). Field mapping:
  // images -> FleetReport::requests, time_per_image -> request_time_serial,
  // total_time -> makespan_sequential, images_per_second -> sequential_rps,
  // energy_per_image -> energy_per_request.

 private:
  PcnnaConfig config_;
  TimingFidelity fidelity_;
  Scheduler scheduler_;
  TimingModel timing_;
  EnergyModel energy_;
  OpticalConvEngine engine_;
};

} // namespace pcnna::core
