// FROZEN reference conv engine — verbatim snapshot of the pre-rewrite
// OpticalConvEngine conv2d path (see engine_reference.hpp). Do not optimize.
#include "core/engine_reference.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/mathutil.hpp"
#include "electronics/adc.hpp"
#include "electronics/dac.hpp"
#include "nn/conv_ref.hpp"
#include "photonics/laser.hpp"
#include "photonics/modulator.hpp"
#include "photonics/waveguide.hpp"
#include "photonics/wdm.hpp"

namespace pcnna::core {
namespace {

/// Precomputed constants of the analog signal chain shared by every bank.
struct AnalogChain {
  double p0 = 0.0;        ///< laser CW power [W]
  double bcast = 1.0;     ///< broadcast-tree factor to one bank
  double mzm_loss = 1.0;  ///< MZM insertion-loss factor
  double mzm_floor = 0.0; ///< MZM extinction floor (transmission at x = 0)
  double resp = 1.0;      ///< photodiode responsivity [A/W]
  /// Current corresponding to one unit of normalized MAC:
  /// resp * p0 * bcast * mzm_loss * (1 - floor).
  double denom_current = 1.0;
  /// Per-channel power at x = 0 (extinction leakage) [W].
  double dark_power = 0.0;
};

AnalogChain make_chain(const PcnnaConfig& cfg, std::size_t fanout) {
  const phot::LaserDiode laser(cfg.laser);
  const phot::MachZehnderModulator mzm(cfg.mzm);
  const phot::Waveguide wg(cfg.waveguide);
  AnalogChain chain;
  chain.p0 = laser.cw_power();
  chain.bcast = wg.broadcast_factor(fanout);
  chain.mzm_loss = from_db(-cfg.mzm.insertion_loss_db);
  chain.mzm_floor = from_db(-cfg.mzm.extinction_ratio_db);
  chain.resp = cfg.bank.photodiode.responsivity;
  chain.denom_current = chain.resp * chain.p0 * chain.bcast * chain.mzm_loss *
                        (1.0 - chain.mzm_floor);
  chain.dark_power = chain.p0 * chain.bcast * chain.mzm_loss * chain.mzm_floor;
  return chain;
}

/// One calibrated bank segment, reduced to its linear response.
struct BankProgram {
  std::vector<phot::WeightBank::ChannelSplit> splits;
  double baseline_current = 0.0; ///< balanced current with all inputs at 0
  double heater_power = 0.0;
  double area = 0.0;
};

/// Quantize a signed weight in [-1, 1] through the kernel-weight DAC.
double quantize_weight(const elec::Dac& dac, double w) {
  return dac.convert((w + 1.0) / 2.0) * 2.0 - 1.0;
}

struct CalibrationError {
  double sum = 0.0;
  double max = 0.0;
  std::uint64_t count = 0;
  void add(double err) {
    sum += err;
    if (err > max) max = err;
    ++count;
  }
};

/// Failure injection: freeze each ring's heater at its parked drive with
/// the configured probability (PcnnaConfig::stuck_ring_rate).
void inject_faults(const PcnnaConfig& cfg, phot::WeightBank& bank, Rng& rng,
                   EngineStats& st) {
  if (cfg.stuck_ring_rate <= 0.0) return;
  for (std::size_t i = 0; i < bank.channels(); ++i) {
    if (rng.uniform() < cfg.stuck_ring_rate) {
      bank.fail_ring(i);
      ++st.stuck_rings;
    }
  }
}

/// ADC full scale for the normalized MAC values of a layer, in units of
/// sum_i x'_i * w'_i with x' in [0, 1] and |w'| <= 1.
double adc_full_scale(double headroom, std::size_t n_channels,
                      double mean_x_sq, double mean_w_sq) {
  const double variance =
      static_cast<double>(n_channels) * mean_x_sq * mean_w_sq;
  return std::max(1e-6, headroom * std::sqrt(variance));
}

/// Mean square of a range of values after dividing by `scale`.
template <typename Range>
double mean_square_scaled(const Range& values, double scale) {
  if (values.empty() || scale == 0.0) return 0.0;
  double acc = 0.0;
  for (double v : values) {
    const double x = v / scale;
    acc += x * x;
  }
  return acc / static_cast<double>(values.size());
}

/// Empirically measure the symmetric weight range a bank of `channels`
/// rings can represent.
double reference_usable_range(const PcnnaConfig& cfg, std::size_t channels,
                             Rng& rng) {
  PCNNA_CHECK(channels >= 1);
  const phot::WdmGrid grid(channels);
  phot::WeightBank bank(grid, cfg.bank, rng);
  const std::size_t mid = channels / 2;
  const std::vector<double> hi(channels, 1.0);
  bank.calibrate(hi);
  const double w_hi = bank.effective_weight(mid);
  const std::vector<double> lo(channels, -1.0);
  bank.calibrate(lo);
  const double w_lo = bank.effective_weight(mid);
  return std::min(w_hi, -w_lo);
}

} // namespace

ReferenceConvEngine::ReferenceConvEngine(PcnnaConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  config_.validate();
}

nn::Tensor ReferenceConvEngine::conv2d(const nn::Tensor& input,
                                       const nn::Tensor& weights,
                                       const nn::Tensor& bias,
                                       std::size_t stride, std::size_t pad,
                                       EngineStats* stats) {
  PCNNA_CHECK_MSG(input.shape().n == 1, "batched inputs not supported");
  PCNNA_CHECK_MSG(input.shape().h == input.shape().w,
                  "PCNNA layers operate on square feature maps");
  if (!input.empty() && input.min() < 0.0) {
    PCNNA_CHECK_MSG(config_.dual_rail_inputs,
                    "photonic amplitude encoding requires non-negative inputs"
                    " (apply ReLU or normalize first, or enable"
                    " dual_rail_inputs)");
    nn::Tensor pos(input.shape()), neg(input.shape());
    for (std::size_t i = 0; i < input.size(); ++i) {
      pos[i] = std::max(0.0, input[i]);
      neg[i] = std::max(0.0, -input[i]);
    }
    EngineStats pos_stats, neg_stats;
    nn::Tensor out = conv2d(pos, weights, bias, stride, pad, &pos_stats);
    const nn::Tensor out_neg = conv2d(neg, weights, {}, stride, pad, &neg_stats);
    for (std::size_t i = 0; i < out.size(); ++i) out[i] -= out_neg[i];
    if (stats) {
      *stats = pos_stats;
      stats->optical_passes += neg_stats.optical_passes;
      stats->dac_conversions += neg_stats.dac_conversions;
      stats->adc_conversions += neg_stats.adc_conversions;
      stats->banks_built += neg_stats.banks_built;
      stats->stuck_rings += neg_stats.stuck_rings;
    }
    return out;
  }
  PCNNA_CHECK(weights.shape().c == input.shape().c);
  PCNNA_CHECK(weights.shape().h == weights.shape().w);

  nn::ConvLayerParams params;
  params.name = "engine";
  params.n = input.shape().h;
  params.m = weights.shape().h;
  params.p = pad;
  params.s = stride;
  params.nc = input.shape().c;
  params.K = weights.shape().n;
  params.validate();

  const Scheduler scheduler(config_);
  const LayerPlan plan = scheduler.plan(params);

  EngineStats local;
  EngineStats& st = stats ? *stats : local;
  st = EngineStats{};
  st.locations = plan.locations;
  st.dac_conversions = plan.input_dac_conversions;
  st.weight_dac_conversions = plan.weight_dac_conversions;
  st.recalibrations = plan.recalibrations;
  st.rings_used = plan.rings_total;
  st.wavelengths_used = plan.group_size;

  nn::Tensor out = plan.allocation == RingAllocation::kFullKernel
                       ? run_full_kernel(plan, input, weights, bias, st)
                       : run_per_channel(plan, input, weights, bias, st);
  return out;
}

nn::Tensor ReferenceConvEngine::run_full_kernel(const LayerPlan& plan,
                                                const nn::Tensor& input,
                                                const nn::Tensor& weights,
                                                const nn::Tensor& bias,
                                                EngineStats& stats) {
  const nn::ConvLayerParams& layer = plan.layer;
  const std::size_t K = layer.K;
  const std::size_t n_kernel = layer.kernel_size();
  const std::size_t side = layer.output_side();

  nn::Tensor out(nn::Shape4{1, K, side, side});

  const double x_scale = input.abs_max();
  const double w_absmax = weights.abs_max();
  if (x_scale == 0.0 || w_absmax == 0.0) {
    for (std::size_t k = 0; k < K; ++k) {
      const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
      for (std::size_t l = 0; l < side * side; ++l) out[k * side * side + l] = b;
    }
    return out;
  }

  const AnalogChain chain = make_chain(config_, K);
  const phot::LaserDiode laser(config_.laser);
  const phot::MachZehnderModulator mzm(config_.mzm);
  const phot::BalancedPhotodiode pd(config_.bank.photodiode);
  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  elec::AdcConfig adc_cfg = config_.adc;
  adc_cfg.full_scale = 1.0;
  const elec::Adc adc(adc_cfg);

  const double usable =
      reference_usable_range(config_, plan.group_size, rng_);
  PCNNA_CHECK_MSG(usable > 0.0, "weight bank has no usable signed range");
  const double denom = 0.95 * usable;
  const double recover = x_scale * w_absmax / denom;

  // --- Program every bank segment once (weights are fixed for the layer).
  CalibrationError cal_err;
  std::vector<std::vector<BankProgram>> programs(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const GroupSlice& slice = plan.groups[g];
    const phot::WdmGrid grid(slice.size());
    programs[g].reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
      phot::WeightBank bank(grid, config_.bank, rng_);
      inject_faults(config_, bank, rng_, stats);
      std::vector<double> targets(slice.size());
      for (std::uint64_t i = 0; i < slice.size(); ++i) {
        double w = weights[k * n_kernel + slice.begin + i] / w_absmax * denom;
        if (config_.enable_quantization) w = quantize_weight(weight_dac, w);
        targets[i] = w;
      }
      const std::vector<double> achieved = bank.calibrate(targets);
      for (std::uint64_t i = 0; i < slice.size(); ++i)
        cal_err.add(std::abs(achieved[i] - targets[i]));

      BankProgram prog;
      prog.splits = bank.channel_splits();
      double base = 0.0;
      for (const auto& split : prog.splits)
        base += chain.dark_power * (split.drop - split.thru);
      prog.baseline_current = chain.resp * base;
      prog.heater_power = bank.total_heater_power();
      prog.area = bank.total_area();
      programs[g].push_back(std::move(prog));

      ++stats.banks_built;
      stats.total_heater_power += prog.heater_power;
      stats.total_ring_area += prog.area;
    }
  }

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  const double mean_w_sq =
      mean_square_scaled(weights.data(), w_absmax) * denom * denom;
  const double mean_x_sq = mean_square_scaled(input.data(), x_scale);
  const double adc_fs =
      adc_full_scale(config_.adc_headroom, n_kernel, mean_x_sq, mean_w_sq);

  std::vector<double> x_norm(n_kernel);
  std::vector<double> powers;
  std::vector<double> acc(K);

  // --- Sequential kernel locations; all K banks in parallel per location.
  for (std::size_t oy = 0; oy < side; ++oy) {
    for (std::size_t ox = 0; ox < side; ++ox) {
      const std::vector<double> field =
          nn::receptive_field(input, layer.m, layer.s, layer.p, oy, ox);
      for (std::size_t i = 0; i < n_kernel; ++i) {
        double x = field[i] / x_scale;
        if (config_.enable_quantization) x = input_dac.convert(x);
        x_norm[i] = x;
      }
      std::fill(acc.begin(), acc.end(), 0.0);

      for (std::size_t g = 0; g < plan.groups.size(); ++g) {
        const GroupSlice& slice = plan.groups[g];
        powers.resize(slice.size());
        for (std::uint64_t i = 0; i < slice.size(); ++i) {
          const double p_src = laser.emit(bw, rng_) * chain.bcast;
          powers[i] = mzm.modulate(p_src, x_norm[slice.begin + i]);
        }
        for (std::size_t k = 0; k < K; ++k) {
          const BankProgram& prog = programs[g][k];
          double p_drop = 0.0, p_thru = 0.0;
          for (std::uint64_t i = 0; i < slice.size(); ++i) {
            p_drop += powers[i] * prog.splits[i].drop;
            p_thru += powers[i] * prog.splits[i].thru;
          }
          const double current = pd.detect(p_drop, p_thru, bw, rng_);
          acc[k] += (current - prog.baseline_current) / chain.denom_current;
        }
        ++stats.optical_passes;
      }

      for (std::size_t k = 0; k < K; ++k) {
        double v = acc[k];
        if (config_.enable_quantization) v = adc.convert(v / adc_fs) * adc_fs;
        ++stats.adc_conversions;
        const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
        out.at(0, k, oy, ox) = v * recover + b;
      }
    }
  }

  if (cal_err.count > 0) {
    stats.mean_calibration_error = cal_err.sum / static_cast<double>(cal_err.count);
    stats.max_calibration_error = cal_err.max;
  }
  return out;
}

nn::Tensor ReferenceConvEngine::run_per_channel(const LayerPlan& plan,
                                                const nn::Tensor& input,
                                                const nn::Tensor& weights,
                                                const nn::Tensor& bias,
                                                EngineStats& stats) {
  const nn::ConvLayerParams& layer = plan.layer;
  const std::size_t K = layer.K;
  const std::size_t per_channel = layer.m * layer.m;
  const std::size_t n_kernel = layer.kernel_size();
  const std::size_t side = layer.output_side();

  nn::Tensor out(nn::Shape4{1, K, side, side});

  const double x_scale = input.abs_max();
  const double w_absmax = weights.abs_max();
  if (x_scale == 0.0 || w_absmax == 0.0) {
    for (std::size_t k = 0; k < K; ++k) {
      const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
      for (std::size_t l = 0; l < side * side; ++l) out[k * side * side + l] = b;
    }
    return out;
  }

  const AnalogChain chain = make_chain(config_, K);
  const phot::LaserDiode laser(config_.laser);
  const phot::MachZehnderModulator mzm(config_.mzm);
  const phot::BalancedPhotodiode pd(config_.bank.photodiode);
  const elec::Dac input_dac(config_.input_dac);
  const elec::Dac weight_dac(config_.weight_dac);
  elec::AdcConfig adc_cfg = config_.adc;
  adc_cfg.full_scale = 1.0;
  const elec::Adc adc(adc_cfg);

  const double usable =
      reference_usable_range(config_, plan.group_size, rng_);
  PCNNA_CHECK_MSG(usable > 0.0, "weight bank has no usable signed range");
  const double denom = 0.95 * usable;
  const double recover = x_scale * w_absmax / denom;

  std::vector<std::vector<phot::WeightBank>> banks(plan.groups.size());
  for (std::size_t g = 0; g < plan.groups.size(); ++g) {
    const phot::WdmGrid grid(plan.groups[g].size());
    banks[g].reserve(K);
    for (std::size_t k = 0; k < K; ++k) {
      banks[g].emplace_back(grid, config_.bank, rng_);
      inject_faults(config_, banks[g].back(), rng_, stats);
      ++stats.banks_built;
      stats.total_ring_area += banks[g].back().total_area();
    }
  }

  const double bw = config_.enable_noise ? config_.fast_clock : 0.0;
  const double mean_w_sq =
      mean_square_scaled(weights.data(), w_absmax) * denom * denom;
  const double mean_x_sq = mean_square_scaled(input.data(), x_scale);
  const double adc_fs =
      adc_full_scale(config_.adc_headroom, per_channel, mean_x_sq, mean_w_sq);

  CalibrationError cal_err;
  std::vector<std::vector<BankProgram>> programs(
      plan.groups.size(), std::vector<BankProgram>(K));
  std::vector<double> x_norm(per_channel);
  std::vector<double> powers;

  // Channel-major execution: retune, then sweep all locations.
  for (std::size_t c = 0; c < layer.nc; ++c) {
    for (std::size_t g = 0; g < plan.groups.size(); ++g) {
      const GroupSlice& slice = plan.groups[g];
      for (std::size_t k = 0; k < K; ++k) {
        std::vector<double> targets(slice.size());
        for (std::uint64_t i = 0; i < slice.size(); ++i) {
          double w = weights[k * n_kernel + c * per_channel + slice.begin + i] /
                     w_absmax * denom;
          if (config_.enable_quantization) w = quantize_weight(weight_dac, w);
          targets[i] = w;
        }
        const std::vector<double> achieved = banks[g][k].calibrate(targets);
        for (std::uint64_t i = 0; i < slice.size(); ++i)
          cal_err.add(std::abs(achieved[i] - targets[i]));

        BankProgram& prog = programs[g][k];
        prog.splits = banks[g][k].channel_splits();
        double base = 0.0;
        for (const auto& split : prog.splits)
          base += chain.dark_power * (split.drop - split.thru);
        prog.baseline_current = chain.resp * base;
      }
    }

    for (std::size_t oy = 0; oy < side; ++oy) {
      for (std::size_t ox = 0; ox < side; ++ox) {
        const std::vector<double> field =
            nn::receptive_field(input, layer.m, layer.s, layer.p, oy, ox);
        for (std::size_t i = 0; i < per_channel; ++i) {
          double x = field[c * per_channel + i] / x_scale;
          if (config_.enable_quantization) x = input_dac.convert(x);
          x_norm[i] = x;
        }
        for (std::size_t g = 0; g < plan.groups.size(); ++g) {
          const GroupSlice& slice = plan.groups[g];
          powers.resize(slice.size());
          for (std::uint64_t i = 0; i < slice.size(); ++i) {
            const double p_src = laser.emit(bw, rng_) * chain.bcast;
            powers[i] = mzm.modulate(p_src, x_norm[slice.begin + i]);
          }
          for (std::size_t k = 0; k < K; ++k) {
            const BankProgram& prog = programs[g][k];
            double p_drop = 0.0, p_thru = 0.0;
            for (std::uint64_t i = 0; i < slice.size(); ++i) {
              p_drop += powers[i] * prog.splits[i].drop;
              p_thru += powers[i] * prog.splits[i].thru;
            }
            const double current = pd.detect(p_drop, p_thru, bw, rng_);
            double v = (current - prog.baseline_current) / chain.denom_current;
            if (config_.enable_quantization)
              v = adc.convert(v / adc_fs) * adc_fs;
            ++stats.adc_conversions;
            out.at(0, k, oy, ox) += v;
          }
          ++stats.optical_passes;
        }
      }
    }
  }

  for (std::size_t k = 0; k < K; ++k) {
    const double b = bias.empty() ? 0.0 : bias.at(0, k, 0, 0);
    for (std::size_t oy = 0; oy < side; ++oy)
      for (std::size_t ox = 0; ox < side; ++ox)
        out.at(0, k, oy, ox) = out.at(0, k, oy, ox) * recover + b;
  }

  for (const auto& group : banks)
    for (const auto& bank : group)
      stats.total_heater_power += bank.total_heater_power();

  if (cal_err.count > 0) {
    stats.mean_calibration_error = cal_err.sum / static_cast<double>(cal_err.count);
    stats.max_calibration_error = cal_err.max;
  }
  return out;
}

} // namespace pcnna::core
