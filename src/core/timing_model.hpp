// Analytical execution-time model — paper SS V-B (Eqs. 6-8, Fig. 6).
//
// Two fidelities:
//
//  * kPaper reproduces the paper's model verbatim. The optical core
//    computes all K kernels for one receptive-field location in one
//    5 GHz cycle, so Tconv = Nlocs / fclock (Eq. 7) — independent of K.
//    The full system adds only the input-DAC constraint: per location,
//    Nupdated = nc*m*s / NDAC sequential conversions at the DAC rate
//    (Eq. 8); per-location time is max(clock period, DAC time).
//
//  * kFull prices a LayerPlan with every stage pipelined per location
//    (input DACs, segmented optical passes, ADC serialization, SRAM port)
//    plus layer-level DRAM traffic, weight programming, and thermal
//    settling — the ablation showing which constraints the paper's model
//    leaves out (DESIGN.md inconsistency #2).
#pragma once

#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/scheduler.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::core {

/// Per-layer execution-time breakdown. Fields that a fidelity level does
/// not model are zero.
struct LayerTiming {
  std::string layer_name;
  std::uint64_t locations = 0;

  /// PCNNA(O): optical-core-only time (Eq. 7 in kPaper).
  double optical_core_time = 0.0;

  /// Stage totals across the layer (kFull; kPaper fills dac_time only).
  double dac_time = 0.0;
  double adc_time = 0.0;
  double sram_time = 0.0;
  double dram_time = 0.0;
  double weight_load_time = 0.0;

  /// PCNNA(O+E): full-system time including electronic constraints.
  double full_system_time = 0.0;

  /// Which constraint dominates full_system_time.
  std::string bottleneck;

  /// Memberwise equality (doubles compared exactly); the planner tests use
  /// it to check cached strategies are bit-identical to fresh ones.
  friend bool operator==(const LayerTiming&, const LayerTiming&) = default;
};

/// Totals across a conv stack.
struct NetworkTiming {
  std::vector<LayerTiming> layers;
  double total_optical_core = 0.0;
  double total_full_system = 0.0;
};

class TimingModel {
 public:
  TimingModel(PcnnaConfig config, TimingFidelity fidelity);

  const PcnnaConfig& config() const { return config_; }
  TimingFidelity fidelity() const { return fidelity_; }

  /// Eq. (8): input values each DAC must convert per kernel location,
  /// nc*m*s / NDAC (real-valued, as the paper computes it: conv4/5 -> ~116).
  double updated_inputs_per_dac(const nn::ConvLayerParams& layer) const;

  /// Execution-time breakdown of one layer.
  LayerTiming layer_time(const nn::ConvLayerParams& layer) const;

  /// Breakdown for every layer plus totals.
  NetworkTiming network_time(
      const std::vector<nn::ConvLayerParams>& layers) const;

 private:
  LayerTiming layer_time_paper(const nn::ConvLayerParams& layer) const;
  LayerTiming layer_time_full(const nn::ConvLayerParams& layer) const;

  PcnnaConfig config_;
  TimingFidelity fidelity_;
  Scheduler scheduler_;
};

} // namespace pcnna::core
