// Batch-serving scaling sweep: fleet throughput vs number of PCUs.
//
// Shards a fixed request stream across N replicated photonic conv units for
// N = 1..8 and reports the simulated fleet makespan, throughput, speedup
// over the single-PCU *serial* baseline (no recalibration overlap), and
// scaling efficiency. Two effects compose:
//
//  * sharding: N PCUs serve N requests at once (→ ~N x),
//  * double buffering: each PCU hides layer i+1's weight-bank
//    recalibration behind layer i's optical pass (→ the per-request
//    overlap speedup, > 1 at kFull fidelity).
//
// The acceptance bar for the runtime is >= 0.8 N scaling for N <= 8; the
// footer prints the worst observed ratio. Values are not simulated
// functionally here (timing/energy models only), so the stream can be long
// enough for steady-state numbers; outputs are the golden CPU path and the
// unit tests separately prove batched == sequential bit-identity for the
// functional path.
#include <algorithm>
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

int main() {
  constexpr std::size_t kBatch = 64;
  constexpr std::size_t kMaxPcus = 8;

  // LeNet-5 keeps the (value-producing) CPU reference path cheap while the
  // timing model still sees a real multi-layer conv stack.
  const nn::Network net = nn::lenet5();
  Rng rng(2026);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  std::vector<nn::Tensor> inputs;
  inputs.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i)
    inputs.push_back(nn::make_network_input(net, rng));

  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  benchutil::DualSink sink({"PCUs", "makespan", "throughput", "speedup",
                            "efficiency", "mean latency", "energy/req"},
                           "pcnna_batch_serving.csv");

  double worst_ratio = 1e300;
  runtime::FleetReport first;
  for (std::size_t pcus = 1; pcus <= kMaxPcus; ++pcus) {
    runtime::BatchRunnerOptions options;
    options.num_pcus = pcus;
    options.fidelity = core::TimingFidelity::kFull;
    options.simulate_values = false;
    options.double_buffer = true;
    options.seed = 7;

    runtime::BatchRunner fleet(config, net, weights, options);
    runtime::FleetReport report;
    fleet.run(inputs, &report);
    if (pcus == 1) first = report;

    const double per_pcu_ratio =
        report.speedup_vs_sequential / static_cast<double>(pcus);
    worst_ratio = std::min(worst_ratio, per_pcu_ratio);

    sink.row({std::to_string(pcus), format_time(report.makespan),
              format_count(report.throughput_rps) + " req/s",
              format_fixed(report.speedup_vs_sequential, 2) + " x",
              format_fixed(100.0 * per_pcu_ratio, 1) + " %",
              format_time(report.mean_latency),
              format_energy(report.energy_per_request)});
  }
  sink.print("Batch serving - fleet scaling, " + net.name() + ", " +
             std::to_string(kBatch) + " requests (kFull fidelity)");

  std::cout << "\nper-request serial time        : "
            << format_time(first.request_time_serial)
            << "\nper-request overlapped interval: "
            << format_time(first.request_interval)
            << "\nrecalibration overlap speedup  : "
            << format_fixed(first.overlap_speedup, 3) << " x"
            << "\nworst speedup/N over the sweep : "
            << format_fixed(100.0 * worst_ratio, 1)
            << " %  (acceptance bar: >= 80 %)\n";
  return worst_ratio >= 0.8 ? 0 : 1;
}
