// Figure 6 reproduction: execution time per AlexNet conv layer for
// PCNNA(O) (pure optical core, Eq. 7), PCNNA(O+E) (full system bound by the
// input DACs, Eq. 8), Eyeriss and YodaNN analytical baselines, plus a
// measured CPU reference.
//
// The paper presents Fig. 6 as bars on a log axis without a numeric table;
// the claims it supports are the *shape*: PCNNA(O) up to ~5 orders of
// magnitude above the electronic engines, PCNNA(O+E) still >3 orders. The
// footer prints both speedup summaries.
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "baselines/cpu.hpp"
#include "baselines/eyeriss.hpp"
#include "baselines/yodann.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

using namespace pcnna;

int main() {
  const core::TimingModel pcnna(core::PcnnaConfig::paper_defaults(),
                                core::TimingFidelity::kPaper);
  const baselines::EyerissModel eyeriss;
  const baselines::YodannModel yodann;
  const baselines::CpuDirectBaseline cpu;

  benchutil::DualSink sink({"layer", "Nlocs", "PCNNA(O)", "PCNNA(O+E)",
                            "bottleneck", "Eyeriss", "YodaNN", "CPU (measured)",
                            "O+E vs Eyeriss"},
                           "pcnna_fig6.csv");

  double worst_oe_speedup = 1e300, best_oe_speedup = 0.0, best_o_speedup = 0.0;
  for (const auto& layer : nn::alexnet_conv_layers()) {
    const auto t = pcnna.layer_time(layer);
    const double t_eyeriss = eyeriss.layer_time(layer);
    const double t_yodann = yodann.layer_time(layer);
    const auto t_cpu = cpu.measure(layer);

    const double oe_speedup = t_eyeriss / t.full_system_time;
    const double o_speedup = t_eyeriss / t.optical_core_time;
    worst_oe_speedup = std::min(worst_oe_speedup, oe_speedup);
    best_oe_speedup = std::max(best_oe_speedup, oe_speedup);
    best_o_speedup = std::max(best_o_speedup, o_speedup);

    sink.row({layer.name, std::to_string(t.locations),
              format_time(t.optical_core_time),
              format_time(t.full_system_time), t.bottleneck,
              format_time(t_eyeriss), format_time(t_yodann),
              format_time(t_cpu.seconds),
              format_count(oe_speedup) + " x"});
  }
  sink.print(
      "Fig. 6 - execution time per AlexNet conv layer (paper timing model)");

  std::cout << "\nPaper claims vs this model:\n"
            << "  optical core speedup vs Eyeriss, best layer   : "
            << format_sci(best_o_speedup)
            << "  (paper: up to ~5 orders of magnitude)\n"
            << "  full-system speedup vs Eyeriss, best layer    : "
            << format_sci(best_oe_speedup)
            << "  (paper: >3 orders of magnitude)\n"
            << "  full-system speedup vs Eyeriss, worst layer   : "
            << format_sci(worst_oe_speedup) << "\n"
            << "  Eq. (8) worked example (conv4, 10 DACs)       : "
            << format_fixed(
                   pcnna.updated_inputs_per_dac(nn::alexnet_conv_layers()[3]),
                   1)
            << " conversions/DAC/location (paper: ~116)\n";
  return 0;
}
