// Ablation: DAC provisioning sweep.
//
// Eq. (8) makes the input DACs the full-system bottleneck. This bench sweeps
// the DAC count (1..64 at the paper's 6 GSa/s) and the DAC rate (at the
// paper's 10 converters) and reports where the bottleneck crosses from the
// DACs to the 5 GHz optical clock for each AlexNet layer — i.e. how much
// converter hardware the paper's architecture needs before the optical core
// is the limit.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/units.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

using namespace pcnna;
namespace u = units;

int main() {
  const auto layers = nn::alexnet_conv_layers();

  {
    benchutil::DualSink sink({"NDAC", "conv1", "conv2", "conv3", "conv4",
                              "conv5", "total", "bottleneck(conv4)"},
                             "pcnna_ablation_dac_count.csv");
    for (std::size_t ndac : {1u, 2u, 4u, 8u, 10u, 16u, 32u, 64u, 128u, 256u,
                             512u, 1024u}) {
      core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
      cfg.num_input_dacs = ndac;
      const core::TimingModel model(cfg, core::TimingFidelity::kPaper);
      const auto net = model.network_time(layers);
      sink.row({std::to_string(ndac),
                format_time(net.layers[0].full_system_time),
                format_time(net.layers[1].full_system_time),
                format_time(net.layers[2].full_system_time),
                format_time(net.layers[3].full_system_time),
                format_time(net.layers[4].full_system_time),
                format_time(net.total_full_system),
                net.layers[3].bottleneck});
    }
    sink.print("Ablation - input-DAC count sweep (6 GSa/s each, paper model)");
  }

  std::cout << '\n';

  {
    benchutil::DualSink sink(
        {"DAC rate", "conv4 O+E", "total O+E", "bottleneck(conv4)"},
        "pcnna_ablation_dac_rate.csv");
    for (double gsa : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 24.0, 48.0}) {
      core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
      cfg.input_dac.sample_rate = gsa * u::GSa;
      const core::TimingModel model(cfg, core::TimingFidelity::kPaper);
      const auto net = model.network_time(layers);
      sink.row({format_fixed(gsa, 0) + " GSa/s",
                format_time(net.layers[3].full_system_time),
                format_time(net.total_full_system),
                net.layers[3].bottleneck});
    }
    sink.print("Ablation - input-DAC rate sweep (10 DACs, paper model)");
  }

  // Where does the crossover land? Per layer: the DAC stops dominating when
  // NDAC >= nc*m*s * fclock / dac_rate.
  std::cout << "\nDACs needed before the optical clock becomes the bottleneck"
               " (nc*m*s * fclock / rate):\n";
  for (const auto& layer : layers) {
    const double needed = static_cast<double>(layer.updated_inputs_per_location()) *
                          5e9 / 6e9;
    std::cout << "  " << layer.name << ": " << format_fixed(needed, 1) << '\n';
  }
  return 0;
}
