// Ablation: paper timing model vs full-fidelity timing model.
//
// The paper declares the input DAC the sole full-system constraint
// (DESIGN.md inconsistency #2). The full-fidelity model also prices ADC
// serialization, SRAM port width, DRAM traffic, WDM segmentation, weight
// programming and thermal settling. This bench shows, per AlexNet layer,
// what each model predicts and which stage actually dominates — and how the
// per-channel ring allocation (the paper's conv4 number) changes the story.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

using namespace pcnna;

int main() {
  const auto layers = nn::alexnet_conv_layers();

  {
    const core::TimingModel paper(core::PcnnaConfig::paper_defaults(),
                                  core::TimingFidelity::kPaper);
    const core::TimingModel full(core::PcnnaConfig::paper_defaults(),
                                 core::TimingFidelity::kFull);
    benchutil::DualSink sink(
        {"layer", "paper O+E", "full O+E", "ratio", "DAC", "ADC", "SRAM",
         "DRAM", "weight-load", "dominant"},
        "pcnna_ablation_bottleneck.csv");
    for (const auto& layer : layers) {
      const auto tp = paper.layer_time(layer);
      const auto tf = full.layer_time(layer);
      sink.row({layer.name, format_time(tp.full_system_time),
                format_time(tf.full_system_time),
                format_fixed(tf.full_system_time / tp.full_system_time, 1) + " x",
                format_time(tf.dac_time), format_time(tf.adc_time),
                format_time(tf.sram_time), format_time(tf.dram_time),
                format_time(tf.weight_load_time), tf.bottleneck});
    }
    sink.print(
        "Ablation - paper vs full-fidelity timing (full-kernel allocation)");
  }

  std::cout << '\n';

  {
    core::PcnnaConfig pc_cfg = core::PcnnaConfig::paper_defaults();
    pc_cfg.allocation = core::RingAllocation::kPerChannel;
    const core::TimingModel full_alloc(core::PcnnaConfig::paper_defaults(),
                                       core::TimingFidelity::kFull);
    const core::TimingModel per_channel(pc_cfg, core::TimingFidelity::kFull);
    benchutil::DualSink sink(
        {"layer", "full-kernel O+E", "per-channel O+E", "penalty",
         "per-channel rings", "full-kernel rings"},
        "pcnna_ablation_allocation.csv");
    for (const auto& layer : layers) {
      const auto tf = full_alloc.layer_time(layer);
      const auto tc = per_channel.layer_time(layer);
      sink.row({layer.name, format_time(tf.full_system_time),
                format_time(tc.full_system_time),
                format_fixed(tc.full_system_time / tf.full_system_time, 1) + " x",
                format_count(static_cast<double>(layer.K * layer.m * layer.m)),
                format_count(static_cast<double>(layer.weight_count()))});
    }
    sink.print(
        "Ablation - ring allocation: the paper's 3456-ring conv4 point "
        "trades rings for nc sequential passes + retuning");
  }

  std::cout << "\nReading: the paper's conv4 '3456 rings / 2.2 mm^2' figure is"
               " only reachable with per-channel reuse,\nwhich multiplies"
               " optical passes by nc and adds a thermal-settling episode per"
               " channel - the full-fidelity\nmodel makes that cost explicit."
            << std::endl;
  return 0;
}
