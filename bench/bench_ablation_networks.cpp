// Ablation: filtering optimization and timing model across network scales.
//
// The paper evaluates AlexNet only; this bench applies the same ring-count
// and execution-time models to LeNet-5 and VGG-16 to show the scaling
// claims generalize: filtered ring counts grow with weights (not inputs),
// and the optical-core time depends only on the location count.
#include <iostream>
#include <string>
#include <vector>

#include "baselines/eyeriss.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/ring_count.hpp"
#include "core/timing_model.hpp"
#include "nn/models.hpp"

using namespace pcnna;

namespace {

void report(const std::string& name,
            const std::vector<nn::ConvLayerParams>& layers,
            benchutil::DualSink& sink) {
  const core::RingCountModel rings;
  const core::TimingModel pcnna(core::PcnnaConfig::paper_defaults(),
                                core::TimingFidelity::kPaper);
  const baselines::EyerissModel eyeriss;

  std::uint64_t total_filtered = 0;
  double total_unfiltered = 0.0;
  double total_o = 0.0, total_oe = 0.0, total_eyeriss = 0.0;
  std::uint64_t max_bank = 0;
  for (const auto& layer : layers) {
    total_filtered += rings.filtered(layer);
    total_unfiltered += static_cast<double>(rings.unfiltered(layer));
    max_bank = std::max(max_bank, rings.filtered(layer));
    const auto t = pcnna.layer_time(layer);
    total_o += t.optical_core_time;
    total_oe += t.full_system_time;
    total_eyeriss += eyeriss.layer_time(layer);
  }
  sink.row({name, std::to_string(layers.size()),
            format_count(total_unfiltered),
            format_count(static_cast<double>(total_filtered)),
            format_count(static_cast<double>(max_bank)),
            format_area(rings.area(max_bank)), format_time(total_o),
            format_time(total_oe), format_time(total_eyeriss),
            format_count(total_eyeriss / total_oe) + " x"});
}

} // namespace

int main() {
  benchutil::DualSink sink(
      {"network", "conv layers", "rings unfiltered", "rings filtered",
       "largest layer (shared core)", "core area", "PCNNA(O)", "PCNNA(O+E)",
       "Eyeriss", "O+E speedup"},
      "pcnna_ablation_networks.csv");

  report("lenet5", nn::lenet5_conv_layers(), sink);
  report("alexnet", nn::alexnet_conv_layers(), sink);
  report("resnet18", nn::resnet18_conv_layers(), sink);
  report("vgg16", nn::vgg16_conv_layers(), sink);

  sink.print(
      "Ablation - receptive-field filtering and timing across networks "
      "(paper model; shared core sized by the largest layer, SS IV)");

  std::cout << "\nReading: filtered ring counts track weight counts, so the"
               " virtually-reused single-layer core (paper SS IV)\nis sized by"
               " the largest layer, not the whole network; the speedup column"
               " shows the DAC-bound full system\nstill beating the electronic"
               " baseline at every scale."
            << std::endl;
  return 0;
}
