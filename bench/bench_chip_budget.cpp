// Extension bench: whole-chip budget, SNR, and batch throughput.
//
// Three views the paper stops short of:
//  1. chip budget — total area and peak power of the shared PCNNA core per
//     network and allocation (the paper quotes component specs but never
//     sums them);
//  2. noise budget — analytical per-layer MAC SNR for AlexNet;
//  3. batch throughput — layer-pipelining the conv stack over 1..5 cores.
#include <iostream>

#include "baselines/systolic.hpp"
#include "bench_util.hpp"
#include "common/format.hpp"
#include "core/chip_report.hpp"
#include "core/noise_budget.hpp"
#include "core/throughput.hpp"
#include "nn/models.hpp"

using namespace pcnna;

int main() {
  // --- 1. Chip budget per network and allocation. ---
  {
    benchutil::DualSink sink({"network", "allocation", "rings", "ring area",
                              "total area", "laser power", "heater (peak)",
                              "total power"},
                             "pcnna_chip_budget.csv");
    for (const auto& [name, layers] :
         {std::pair{std::string("lenet5"), nn::lenet5_conv_layers()},
          std::pair{std::string("alexnet"), nn::alexnet_conv_layers()},
          std::pair{std::string("vgg16"), nn::vgg16_conv_layers()}}) {
      for (auto allocation : {core::RingAllocation::kFullKernel,
                              core::RingAllocation::kPerChannel}) {
        core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
        cfg.allocation = allocation;
        const core::ChipReportModel model(cfg);
        const core::ChipBudget b = model.network_budget(layers);
        sink.row({name, core::ring_allocation_name(allocation),
                  format_count(static_cast<double>(b.rings)),
                  format_area(b.ring_area), format_area(b.total_area()),
                  format_power(b.laser_power), format_power(b.heater_power),
                  format_power(b.total_power())});
      }
    }
    sink.print("Extension - shared-core chip budget (paper component specs)");
  }

  std::cout << '\n';

  // --- 2. Analytical MAC SNR per AlexNet layer. ---
  {
    const core::NoiseBudgetModel noise(core::PcnnaConfig::paper_defaults());
    benchutil::DualSink sink({"layer", "branch current", "sigma/pass",
                              "MAC sigma", "ADC sigma", "MAC rms", "SNR",
                              "dominant"},
                             "pcnna_noise_budget.csv");
    for (const auto& layer : nn::alexnet_conv_layers()) {
      const auto b = noise.layer_budget(layer);
      sink.row({layer.name, format_sci(b.mean_branch_current),
                format_sci(b.sigma_pass), format_sci(b.mac_sigma),
                format_sci(b.adc_quantization_sigma), format_fixed(b.mac_rms, 2),
                format_fixed(b.snr_db, 1) + " dB", b.dominant_source});
    }
    sink.print("Extension - analytical MAC noise budget (paper defaults)");
  }

  std::cout << '\n';

  // --- 3. Batch throughput via layer pipelining. ---
  {
    const core::ThroughputModel throughput(core::PcnnaConfig::paper_defaults());
    benchutil::DualSink sink({"cores", "latency/image", "interval",
                              "images/s", "speedup", "stage split"},
                             "pcnna_throughput.csv");
    for (std::size_t cores = 1; cores <= 5; ++cores) {
      const auto r = throughput.pipeline(nn::alexnet_conv_layers(), cores);
      std::string split;
      for (const auto& [first, last] : r.stages) {
        if (!split.empty()) split += " | ";
        split += std::to_string(first + 1) + "-" + std::to_string(last + 1);
      }
      sink.row({std::to_string(cores), format_time(r.latency),
                format_time(r.interval),
                format_count(r.images_per_second()),
                format_fixed(r.throughput_speedup, 2) + " x", split});
    }
    sink.print(
        "Extension - AlexNet conv-stack throughput with layer-pipelined "
        "cores (paper model)");
  }

  // --- 4. Systolic-array comparison point. ---
  const baselines::SystolicModel systolic;
  std::cout << "\nTPU-class systolic baseline (256x256 @ 700 MHz), AlexNet:\n";
  for (const auto& layer : nn::alexnet_conv_layers()) {
    std::cout << "  " << layer.name << ": "
              << format_time(systolic.layer_time(layer)) << " ("
              << format_fixed(100.0 * systolic.utilization(layer), 1)
              << " % utilization, " << systolic.tiles(layer) << " tiles)\n";
  }
  return 0;
}
