// Table I reproduction: convolution-layer parameters and the derived sizes
// (Eqs. 1-3, 6) for the paper's AlexNet workload.
//
// The paper's Table I is a parameter glossary; this bench instantiates it
// for every AlexNet conv layer and prints the derived quantities the rest
// of the evaluation builds on, cross-checked against closed forms.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "nn/models.hpp"

using namespace pcnna;

int main() {
  benchutil::DualSink sink({"layer", "n", "m", "p", "s", "nc", "K", "Ninput",
                            "Nkernel", "out side", "Noutput", "Nlocs", "MACs"},
                           "pcnna_table1.csv");

  for (const auto& layer : nn::alexnet_conv_layers()) {
    // Cross-check the algebra before printing (a bench that prints wrong
    // numbers is worse than one that aborts).
    PCNNA_CHECK(layer.output_size() == layer.num_locations() * layer.K);
    PCNNA_CHECK(layer.input_size() == layer.n * layer.n * layer.nc);
    PCNNA_CHECK(layer.kernel_size() == layer.m * layer.m * layer.nc);

    sink.row({layer.name, std::to_string(layer.n), std::to_string(layer.m),
              std::to_string(layer.p), std::to_string(layer.s),
              std::to_string(layer.nc), std::to_string(layer.K),
              std::to_string(layer.input_size()),
              std::to_string(layer.kernel_size()),
              std::to_string(layer.output_side()),
              std::to_string(layer.output_size()),
              std::to_string(layer.num_locations()),
              format_count(static_cast<double>(layer.macs()))});
  }
  sink.print(
      "Table I - convolution layer parameters (AlexNet, Eqs. 1-3 and 6)");

  std::cout << "\nWorked checks from the paper text:\n"
            << "  conv1 Ninput = 150528 (the >150k x ring-saving factor)\n"
            << "  conv1 Nkernel = 363, conv4 Nkernel = 3456\n";
  return 0;
}
