// Figure 5 reproduction: total microrings per AlexNet conv layer, with and
// without receptive-field filtering (Eqs. 4-5), plus the paper's SS V-A
// worked numbers (5.2 B -> 35 k rings, >150k x saving, conv4 3456 rings at
// 2.2 mm^2).
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/units.hpp"
#include "core/ring_count.hpp"
#include "nn/models.hpp"

using namespace pcnna;
namespace u = units;

int main() {
  const core::RingCountModel model; // 25 um pitch [10]

  benchutil::DualSink sink(
      {"layer", "input", "kernels", "Not-Filtered (Eq.4)", "Filtered (Eq.5)",
       "saving", "per-channel (paper conv4)", "area @25um (Eq.5)"},
      "pcnna_fig5.csv");

  for (const auto& layer : nn::alexnet_conv_layers()) {
    const std::uint64_t unfiltered = model.unfiltered(layer);
    const std::uint64_t filtered = model.filtered(layer);
    const std::uint64_t per_channel =
        model.filtered(layer, core::RingAllocation::kPerChannel);
    PCNNA_CHECK(filtered <= unfiltered);
    sink.row({layer.name, benchutil::shape_str(layer),
              benchutil::kernel_str(layer),
              format_count(static_cast<double>(unfiltered)),
              format_count(static_cast<double>(filtered)),
              format_count(model.savings_factor(layer)) + " x",
              format_count(static_cast<double>(per_channel)),
              format_area(model.area(filtered))});
  }
  sink.print(
      "Fig. 5 - microrings per AlexNet conv layer, Filtered vs Not-Filtered");

  // The worked numbers quoted in SS V-A, printed for eyeball comparison.
  const auto conv1 = nn::alexnet_conv_layers()[0];
  const auto conv4 = nn::alexnet_conv_layers()[3];
  std::cout << "\nPaper SS V-A worked numbers:\n"
            << "  conv1 unfiltered : "
            << format_count(static_cast<double>(model.unfiltered(conv1)))
            << "  (paper: ~5.2 Billion)\n"
            << "  conv1 filtered   : "
            << format_count(static_cast<double>(model.filtered(conv1)))
            << "  (paper: ~35 thousand)\n"
            << "  conv1 saving     : "
            << format_count(model.savings_factor(conv1))
            << " x (paper: >150k x)\n"
            << "  conv4 rings      : "
            << model.filtered(conv4, core::RingAllocation::kPerChannel)
            << " under the per-channel allocation (paper: 3456; strict Eq. 5"
               " gives "
            << format_count(static_cast<double>(model.filtered(conv4)))
            << ")\n"
            << "  conv4 area       : "
            << format_area(model.area(
                   model.filtered(conv4, core::RingAllocation::kPerChannel)))
            << " (paper: 2.2 mm^2)\n";
  return 0;
}
