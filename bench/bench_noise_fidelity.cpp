// Extension bench: numerical fidelity of the photonic MAC vs the analog
// impairment budget.
//
// The paper treats the optical core as exact; this bench runs the functional
// simulator on a fixed conv layer and sweeps (a) which impairments are
// enabled and (b) the back-end ADC resolution, reporting RMSE / max error
// against the golden CPU convolution. It quantifies the error budget a real
// broadcast-and-weight implementation of PCNNA would carry.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

namespace {

struct Case {
  const char* name;
  core::PcnnaConfig cfg;
};

} // namespace

int main() {
  const nn::ConvLayerParams layer{"probe", 12, 3, 1, 1, 8, 16};
  Rng rng(424242);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto bias = nn::make_conv_bias(layer, rng);
  const auto golden = nn::conv2d_direct(input, weights, bias, layer.s, layer.p);
  const double swing = golden.abs_max();

  auto run_case = [&](const core::PcnnaConfig& cfg, core::EngineStats* stats =
                                                        nullptr) {
    core::OpticalConvEngine engine(cfg);
    return engine.conv2d(input, weights, bias, layer.s, layer.p, stats);
  };

  {
    std::vector<Case> cases;
    cases.push_back({"ideal (no impairments)", core::PcnnaConfig::ideal()});

    core::PcnnaConfig c = core::PcnnaConfig::ideal();
    c.bank = core::PcnnaConfig::paper_defaults().bank;
    c.bank.photodiode.enable_shot_noise = false;
    c.bank.photodiode.enable_thermal_noise = false;
    cases.push_back({"+ realistic rings (Q=20k, crosstalk)", c});

    c.bank.ring.fab_sigma = 0.05e-9;
    cases.push_back({"+ fabrication disorder (50 pm)", c});

    core::PcnnaConfig q = c;
    q.enable_quantization = true;
    q.input_dac = core::PcnnaConfig::paper_defaults().input_dac;
    q.weight_dac = core::PcnnaConfig::paper_defaults().weight_dac;
    q.adc = core::PcnnaConfig::paper_defaults().adc;
    cases.push_back({"+ DAC/ADC quantization (16b/8b)", q});

    core::PcnnaConfig n = q;
    n.enable_noise = true;
    n.bank.photodiode.enable_shot_noise = true;
    n.bank.photodiode.enable_thermal_noise = true;
    cases.push_back({"+ RIN/shot/thermal noise @5GHz (paper defaults)", n});

    benchutil::DualSink sink({"impairment stack", "RMSE", "max |err|",
                              "rel. to output swing", "mean cal. error"},
                             "pcnna_noise_fidelity.csv");
    for (auto& kase : cases) {
      kase.cfg.seed = 7;
      core::EngineStats stats;
      const auto out = run_case(kase.cfg, &stats);
      const double err_rmse = rmse(out.data(), golden.data());
      const double err_max = nn::max_abs_diff(out, golden);
      sink.row({kase.name, format_sci(err_rmse), format_sci(err_max),
                format_fixed(100.0 * err_max / swing, 2) + " %",
                format_sci(stats.mean_calibration_error)});
    }
    sink.print("Extension - photonic MAC error budget (12x12x8 conv, 16 kernels)");
  }

  std::cout << '\n';

  {
    benchutil::DualSink sink({"ADC bits", "RMSE", "max |err|",
                              "rel. to output swing"},
                             "pcnna_noise_adc_bits.csv");
    for (int bits : {4, 6, 8, 10, 12, 14, 16}) {
      core::PcnnaConfig cfg = core::PcnnaConfig::ideal();
      cfg.enable_quantization = true;
      cfg.adc.bits = bits;
      const auto out = run_case(cfg);
      const double err_rmse = rmse(out.data(), golden.data());
      sink.row({std::to_string(bits), format_sci(err_rmse),
                format_sci(nn::max_abs_diff(out, golden)),
                format_fixed(100.0 * nn::max_abs_diff(out, golden) / swing, 2) +
                    " %"});
    }
    sink.print("Extension - ADC resolution sweep (all other impairments off)");
  }

  std::cout << "\nReading: the paper's 2.8 GSa/s ADC [17] has ~8 effective"
               " bits; the sweep shows that resolution, not the photonic"
               " path,\nsets the numerical floor of the full system."
            << std::endl;
  return 0;
}
