// Ablation: kernel value-sparsity (extension of the paper's SS II theme).
//
// Receptive-field filtering exploits the structural sparsity of conv
// connections; pruned models add value sparsity on top. This bench sweeps
// the zero fraction of synthetic AlexNet-shaped kernels and reports how
// many rings a pruned-model design actually needs, plus the heater power
// that parked rings stop drawing.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/ring_count.hpp"
#include "core/sparsity.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

int main() {
  const auto conv4 = nn::alexnet_conv_layers()[3];
  const core::RingCountModel rings;
  const core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
  const core::SparsityAnalyzer analyzer;

  benchutil::DualSink sink(
      {"target sparsity", "measured", "dense rings (Eq.5)", "pruned rings",
       "uniform-bank rings", "ring area saved", "heater power saved"},
      "pcnna_ablation_sparsity.csv");

  for (double target : {0.0, 0.1, 0.3, 0.5, 0.7, 0.8, 0.9}) {
    Rng rng(1234);
    nn::Tensor weights(
        nn::Shape4{conv4.K, conv4.nc, conv4.m, conv4.m});
    nn::fill_sparse_gaussian(weights, rng, 0.1, target);
    const core::SparsityStats stats = analyzer.analyze(weights);
    const std::uint64_t dense = rings.filtered(conv4);
    const double area_saved =
        rings.area(dense) - rings.area(stats.pruned_rings);
    sink.row({format_fixed(target, 2), format_fixed(stats.sparsity, 3),
              format_count(static_cast<double>(dense)),
              format_count(static_cast<double>(stats.pruned_rings)),
              format_count(static_cast<double>(stats.pruned_rings_uniform)),
              format_area(area_saved),
              format_power(analyzer.heater_power_saved(cfg, stats))});
  }
  sink.print(
      "Ablation - value sparsity on AlexNet conv4 kernels (dense Eq. 5 core "
      "vs pruned-model core)");

  std::cout << "\nReading: at the 70-90% sparsity typical of magnitude-pruned"
               " CNNs, a pruned-model PCNNA core needs 3-10x fewer rings than"
               " Eq. 5\nand saves watts of heater power; the uniform-bank"
               " column shows the penalty of keeping one shared bank layout"
               " for all kernels."
            << std::endl;
  return 0;
}
