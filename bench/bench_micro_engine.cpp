// Microbenchmarks: simulator hot-path throughput and the PR 3 engine
// rewrite's A/B speedup.
//
// Not a paper artifact — this measures the *simulator itself* so regressions
// in the hot paths (golden conv, bank calibration, functional engine) are
// visible across PRs. The functional engine is timed twice: the frozen
// pre-rewrite snapshot (core::ReferenceConvEngine) and the rewritten
// patch-streaming engine, single-threaded and with intra-image parallelism,
// on both the ideal and the paper-defaults (noise + quantization) configs.
//
// Output: a table + pcnna_micro_engine.csv, plus machine-readable rows in
// BENCH_engine.json (schema in docs/benchmarks.md). Self-checks gate the
// exit code:
//  * bit-identity — the rewritten engine must match the frozen reference
//    bitwise on every timed config, threads in {1, 2, 4};
//  * speedup — the single-threaded rewritten engine must beat the reference
//    on the ideal config (the hard floor here is deliberately below the
//    ~2x+ typical, to keep CI robust on noisy shared runners).
//
// Thread-scaling rows are reported but not gated: CI runners and dev
// machines differ in core count (a 1-core host shows ~1.0x).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/engine_reference.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"
#include "photonics/weight_bank.hpp"

using namespace pcnna;

namespace {

// 32x32x8 feature map, 16 3x3 kernels: 1024 kernel locations, so the
// per-pixel hot loop (not the one-time per-layer calibration) dominates the
// timing, as it does for real serving layers.
const nn::ConvLayerParams kLayer{"bench", 32, 3, 1, 1, 8, 16};

struct Data {
  nn::Tensor input, weights, bias;
  Data() {
    Rng rng(99);
    input = nn::make_input(kLayer, rng);
    weights = nn::make_conv_weights(kLayer, rng);
    bias = nn::make_conv_bias(kLayer, rng);
  }
};

const Data& data() {
  static Data d;
  return d;
}

/// Best-of-R wall time per call of `fn` [s]; each repetition batches enough
/// calls to dominate clock granularity.
template <typename Fn>
double time_per_call(Fn&& fn, int reps = 5, double min_batch_seconds = 0.05) {
  using clock = std::chrono::steady_clock;
  // Calibrate the batch size from one warmup call.
  const auto w0 = clock::now();
  fn();
  const double warm =
      std::chrono::duration<double>(clock::now() - w0).count();
  const int iters = std::max(1, static_cast<int>(min_batch_seconds /
                                                 std::max(warm, 1e-9)));
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double dt =
        std::chrono::duration<double>(clock::now() - t0).count();
    best = std::min(best, dt / iters);
  }
  return best;
}

core::PcnnaConfig with_threads(core::PcnnaConfig cfg, std::size_t threads) {
  cfg.engine_threads = threads;
  return cfg;
}

} // namespace

int main() {
  benchutil::DualSink sink({"config", "wall/call", "speedup vs ref", "MMAC/s"},
                           "pcnna_micro_engine.csv");
  benchutil::BenchJsonWriter json("micro_engine", "BENCH_engine.json");
  const double macs = static_cast<double>(kLayer.macs());
  bool ok = true;

  const auto engine_row = [&](const std::string& name, double t,
                              double ref_t) {
    json.row(name, "wall_time_per_conv", t, "s");
    if (ref_t > 0.0) json.row(name, "speedup_vs_reference", ref_t / t, "x");
    sink.row({name, format_time(t),
              ref_t > 0.0 ? format_fixed(ref_t / t, 2) + " x" : "-",
              format_fixed(macs / t / 1e6, 1)});
  };

  // --- golden CPU reference convs ---------------------------------------
  {
    const double t = time_per_call([&] {
      nn::conv2d_direct(data().input, data().weights, data().bias, 1, 1);
    });
    json.row("golden_conv_direct", "wall_time_per_conv", t, "s");
    sink.row({"golden_conv_direct", format_time(t), "-",
              format_fixed(macs / t / 1e6, 1)});
    const double t2 = time_per_call([&] {
      nn::conv2d_im2col(data().input, data().weights, data().bias, 1, 1);
    });
    json.row("golden_conv_im2col", "wall_time_per_conv", t2, "s");
    sink.row({"golden_conv_im2col", format_time(t2), "-",
              format_fixed(macs / t2 / 1e6, 1)});
  }

  // --- weight-bank calibration ------------------------------------------
  for (const std::size_t channels : {8u, 32u, 96u}) {
    Rng rng(5);
    phot::WdmGrid grid(channels);
    phot::WeightBank bank(grid, phot::WeightBankConfig{}, rng);
    std::vector<double> targets(channels);
    for (std::size_t i = 0; i < channels; ++i)
      targets[i] = (i % 2 ? -1.0 : 1.0) * 0.8 * static_cast<double>(i + 1) /
                   static_cast<double>(channels);
    const double t = time_per_call([&] { bank.calibrate(targets); });
    const std::string name =
        "bank_calibration_" + std::to_string(channels);
    json.row(name, "wall_time_per_calibration", t, "s");
    sink.row({name, format_time(t), "-", "-"});
  }
  sink.separator();

  // --- functional engine: frozen reference vs rewritten hot path --------
  struct EngineCase {
    const char* name;
    core::PcnnaConfig config;
  };
  const EngineCase cases[] = {
      {"engine_ideal", core::PcnnaConfig::ideal()},
      {"engine_noisy", core::PcnnaConfig::paper_defaults()},
  };
  double ideal_t1_speedup = 0.0;

  for (const EngineCase& c : cases) {
    core::ReferenceConvEngine reference(c.config);
    const nn::Tensor expected = [&] {
      reference.reset_rng();
      return reference.conv2d(data().input, data().weights, data().bias, 1, 1);
    }();
    const double ref_t = time_per_call([&] {
      reference.reset_rng();
      reference.conv2d(data().input, data().weights, data().bias, 1, 1);
    });
    engine_row(std::string(c.name) + "_reference", ref_t, 0.0);

    for (const std::size_t threads : {1u, 2u, 4u}) {
      core::OpticalConvEngine engine(with_threads(c.config, threads));
      // Bit-identity self-check before timing.
      engine.reset_rng();
      const nn::Tensor got =
          engine.conv2d(data().input, data().weights, data().bias, 1, 1);
      if (!(got == expected)) {
        std::cout << "FAIL: " << c.name << " threads=" << threads
                  << " is not bit-identical to the frozen reference (max "
                  << format_sci(nn::max_abs_diff(got, expected)) << ")\n";
        ok = false;
      }
      const double t = time_per_call([&] {
        engine.reset_rng();
        engine.conv2d(data().input, data().weights, data().bias, 1, 1);
      });
      engine_row(std::string(c.name) + "_t" + std::to_string(threads), t,
                 ref_t);
      if (c.config.enable_noise == false && threads == 1)
        ideal_t1_speedup = ref_t / t;
    }
  }

  sink.print("Simulator micro-benchmarks - layer " +
             benchutil::shape_str(kLayer) + ", " +
             benchutil::kernel_str(kLayer) +
             " (best-of-5 wall times; reference = frozen pre-rewrite engine)");
  if (!json.finish()) ok = false;

  // Speedup gate: the rewrite must clearly beat the reference single-
  // threaded on the ideal config (typical >= 2x; floor kept conservative
  // for noisy shared CI runners).
  if (ideal_t1_speedup < 1.5) {
    std::cout << "FAIL: single-thread ideal-config speedup "
              << format_fixed(ideal_t1_speedup, 2)
              << " x is below the 1.5 x floor\n";
    ok = false;
  }

  std::cout << "\nself-checks: " << (ok ? "PASS" : "FAIL")
            << " (A/B bit-identity for threads {1,2,4}, >= 1.5x single-thread"
               " speedup)\n";
  return ok ? 0 : 1;
}
