// Microbenchmarks (google-benchmark): simulator component throughput.
//
// Not a paper artifact — this measures the *simulator itself* so regressions
// in the hot paths (golden conv, bank calibration, functional engine) are
// visible.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"
#include "photonics/weight_bank.hpp"

using namespace pcnna;

namespace {

const nn::ConvLayerParams kLayer{"bench", 16, 3, 1, 1, 8, 16};

struct Data {
  nn::Tensor input, weights, bias;
  Data() {
    Rng rng(99);
    input = nn::make_input(kLayer, rng);
    weights = nn::make_conv_weights(kLayer, rng);
    bias = nn::make_conv_bias(kLayer, rng);
  }
};

const Data& data() {
  static Data d;
  return d;
}

void BM_GoldenConvDirect(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::conv2d_direct(data().input, data().weights, data().bias, 1, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayer.macs()));
}
BENCHMARK(BM_GoldenConvDirect);

void BM_GoldenConvIm2col(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::conv2d_im2col(data().input, data().weights, data().bias, 1, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayer.macs()));
}
BENCHMARK(BM_GoldenConvIm2col);

void BM_WeightBankCalibration(benchmark::State& state) {
  const auto channels = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  phot::WdmGrid grid(channels);
  phot::WeightBank bank(grid, phot::WeightBankConfig{}, rng);
  std::vector<double> targets(channels);
  for (std::size_t i = 0; i < channels; ++i)
    targets[i] = (i % 2 ? -1.0 : 1.0) * 0.8 * static_cast<double>(i + 1) /
                 static_cast<double>(channels);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bank.calibrate(targets));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(channels));
}
BENCHMARK(BM_WeightBankCalibration)->Arg(8)->Arg(32)->Arg(96);

void BM_OpticalEngineIdeal(benchmark::State& state) {
  core::OpticalConvEngine engine(core::PcnnaConfig::ideal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.conv2d(data().input, data().weights, data().bias, 1, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayer.macs()));
}
BENCHMARK(BM_OpticalEngineIdeal);

void BM_OpticalEngineNoisy(benchmark::State& state) {
  core::OpticalConvEngine engine(core::PcnnaConfig::paper_defaults());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.conv2d(data().input, data().weights, data().bias, 1, 1));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kLayer.macs()));
}
BENCHMARK(BM_OpticalEngineNoisy);

} // namespace

BENCHMARK_MAIN();
