// Open-loop serving sweep: tail latency vs offered load (the hockey stick).
//
// Drives a 4-PCU fleet with seeded Poisson arrivals at offered loads from
// 0.1x to 1.2x of fleet capacity and reports, per load point, the latency
// distribution (p50/p99/p99.9), mean queueing delay and queue depth, mean
// per-PCU utilization, and offered vs achieved throughput. Below
// saturation the fleet tracks the offered load with flat tails; past
// ~1.0x the queue grows without bound over the run and p99 explodes —
// the behavior a closed all-at-once batch cannot show.
//
// A second sweep drives a heterogeneous fleet (2 paper-default "big" PCUs
// + 2 small_core "small" ones) under each dispatch policy at fixed load
// and reports p50/p99 per policy — the skew capability-aware dispatch is
// built to exploit.
//
// The sweeps themselves are timing-only (BatchRunner::simulate_open_loop):
// the admission loop needs no functional inference, so each point can use
// thousands of requests. Three self-checks gate the exit code:
//
//  * determinism — re-simulating a sweep point reproduces every reported
//    number bitwise;
//  * bit-identity — a small functional open-loop batch matches the
//    sequential single-PCU reference output bit for bit;
//  * mixed-fleet ordering — capability-aware p99 beats earliest-free p99
//    on the skewed fleet at a load its capable subset absorbs.
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"

using namespace pcnna;

int main() {
  constexpr std::size_t kPcus = 4;
  constexpr std::size_t kRequestsPerPoint = 5000;
  constexpr std::uint64_t kArrivalSeed = 2027;

  const nn::Network net = nn::lenet5();
  Rng rng(2026);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = kPcus;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = false;
  options.double_buffer = true;
  options.seed = 7;
  runtime::BatchRunner fleet(config, net, weights, options);

  const double capacity = fleet.simulate_open_loop({}).fleet_capacity_rps;

  benchutil::DualSink sink({"load", "offered", "achieved", "p50", "p99",
                            "p99.9", "mean wait", "queue depth", "util"},
                           "pcnna_open_loop.csv");
  benchutil::BenchJsonWriter json("open_loop", "BENCH_open_loop.json");

  bool ok = true;
  double p99_low = 0.0, p99_high = 0.0;
  for (int step = 1; step <= 12; ++step) {
    const double load = 0.1 * static_cast<double>(step);
    const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
        kRequestsPerPoint, load * capacity, kArrivalSeed + step);
    const runtime::OpenLoopReport r = fleet.simulate_open_loop(arrivals);

    if (step == 3) p99_low = r.latency.p99;
    if (step == 12) p99_high = r.latency.p99;

    double util_sum = 0.0;
    for (double u : r.utilization_per_pcu) util_sum += u;
    const double util_mean = util_sum / static_cast<double>(kPcus);

    sink.row({format_fixed(load, 1) + " x",
              format_count(r.offered_rps) + " req/s",
              format_count(r.achieved_rps) + " req/s",
              format_time(r.latency.p50), format_time(r.latency.p99),
              format_time(r.latency.p999), format_time(r.queue_wait.mean),
              format_fixed(r.mean_queue_depth, 2),
              format_fixed(100.0 * util_mean, 1) + " %"});

    const std::string point = "load_" + format_fixed(load, 1) + "x";
    json.row(point, "offered_rps", r.offered_rps, "req/s");
    json.row(point, "achieved_rps", r.achieved_rps, "req/s");
    json.row(point, "latency_p50", r.latency.p50, "s");
    json.row(point, "latency_p99", r.latency.p99, "s");
    json.row(point, "latency_p999", r.latency.p999, "s");
    json.row(point, "queue_wait_mean", r.queue_wait.mean, "s");
    json.row(point, "mean_queue_depth", r.mean_queue_depth, "requests");
    json.row(point, "utilization_mean", util_mean, "fraction");

    // Determinism self-check on the mid-sweep point: a re-simulation must
    // reproduce the schedule bitwise.
    if (step == 6) {
      const runtime::OpenLoopReport again = fleet.simulate_open_loop(arrivals);
      if (again.makespan != r.makespan || again.latency.p99 != r.latency.p99 ||
          again.latency.p999 != r.latency.p999 ||
          again.mean_queue_depth != r.mean_queue_depth ||
          again.utilization_per_pcu != r.utilization_per_pcu) {
        std::cout << "FAIL: re-simulated load point is not bit-identical\n";
        ok = false;
      }
    }
  }
  sink.print("Open-loop serving - " + net.name() + ", " +
             std::to_string(kPcus) + " PCUs, " +
             std::to_string(kRequestsPerPoint) +
             " Poisson requests per point (fleet capacity " +
             format_count(capacity) + " req/s)");
  json.row("fleet", "capacity_rps", capacity, "req/s");

  // --- Mixed-fleet sweep: 2 big + 2 small PCUs, one row set per dispatch
  // policy at a fixed offered load the capable (big) subset can absorb.
  // The skew is the point: earliest-free parks requests on the slow PCUs,
  // least-loaded and capability-aware route around them.
  {
    runtime::PcuSpec big;
    big.config = config;
    big.tag = "big";
    runtime::PcuSpec small;
    small.config = core::PcnnaConfig::small_core();
    small.tag = "small";
    const std::vector<runtime::PcuSpec> specs = {big, big, small, small};

    benchutil::DualSink hsink({"policy", "offered", "achieved", "p50", "p99",
                               "mean wait", "big reqs", "small reqs"},
                              "pcnna_open_loop_hetero.csv");

    double ef_p99 = 0.0, cap_p99 = 0.0, big_capacity = 0.0;
    for (const runtime::DispatchPolicy policy :
         runtime::kAllDispatchPolicies) {
      runtime::BatchRunnerOptions hopts = options;
      hopts.dispatch = policy;
      runtime::BatchRunner hetero(specs, net, weights, hopts);
      if (big_capacity == 0.0) {
        big_capacity =
            2.0 / hetero.pool().pcu(0).request_interval_overlapped();
      }
      const runtime::OpenLoopReport r = hetero.simulate_open_loop(
          runtime::poisson_arrivals(kRequestsPerPoint, 0.4 * big_capacity,
                                    kArrivalSeed));
      if (policy == runtime::DispatchPolicy::kEarliestFree)
        ef_p99 = r.latency.p99;
      if (policy == runtime::DispatchPolicy::kCapabilityAware)
        cap_p99 = r.latency.p99;

      hsink.row({runtime::dispatch_policy_name(policy),
                 format_count(r.offered_rps) + " req/s",
                 format_count(r.achieved_rps) + " req/s",
                 format_time(r.latency.p50), format_time(r.latency.p99),
                 format_time(r.queue_wait.mean),
                 std::to_string(r.per_pcu[0].requests +
                                r.per_pcu[1].requests),
                 std::to_string(r.per_pcu[2].requests +
                                r.per_pcu[3].requests)});

      const std::string point =
          std::string("hetero_") + runtime::dispatch_policy_name(policy);
      json.row(point, "offered_rps", r.offered_rps, "req/s");
      json.row(point, "achieved_rps", r.achieved_rps, "req/s");
      json.row(point, "latency_p50", r.latency.p50, "s");
      json.row(point, "latency_p99", r.latency.p99, "s");
      json.row(point, "queue_wait_mean", r.queue_wait.mean, "s");
      json.row(point, "small_pcu_requests",
               static_cast<double>(r.per_pcu[2].requests +
                                   r.per_pcu[3].requests),
               "requests");
    }
    hsink.print("Mixed fleet (2 big + 2 small_core PCUs) - " + net.name() +
                ", " + std::to_string(kRequestsPerPoint) +
                " Poisson requests at 0.4x big-subset capacity");

    if (!(cap_p99 < ef_p99)) {
      std::cout << "FAIL: capability-aware p99 (" << format_time(cap_p99)
                << ") does not beat earliest-free p99 ("
                << format_time(ef_p99) << ") on the skewed fleet\n";
      ok = false;
    }
  }

  if (!json.finish()) ok = false;

  // The hockey stick: overload tails must tower over light-load tails.
  if (!(p99_high > 2.0 * p99_low)) {
    std::cout << "FAIL: p99 at 1.2x load (" << format_time(p99_high)
              << ") does not dominate p99 at 0.3x (" << format_time(p99_low)
              << ")\n";
    ok = false;
  }

  // Bit-identity self-check: open-loop functional outputs equal the
  // sequential single-PCU reference for the same request ids.
  {
    const nn::Network small = nn::tiny_cnn();
    Rng srng(11);
    const nn::NetWeights sweights = nn::make_network_weights(small, srng);
    std::vector<nn::Tensor> inputs;
    for (std::size_t i = 0; i < 6; ++i)
      inputs.push_back(nn::make_network_input(small, srng));

    runtime::BatchRunnerOptions fopts;
    fopts.num_pcus = 3;
    fopts.simulate_values = true;
    fopts.seed = 5;
    runtime::BatchRunner open(config, small, sweights, fopts);
    const double small_capacity =
        open.simulate_open_loop({}).fleet_capacity_rps;
    const auto results = open.run_open_loop(
        inputs,
        runtime::poisson_arrivals(inputs.size(), 0.5 * small_capacity, 1));

    runtime::BatchRunnerOptions sopts = fopts;
    sopts.num_pcus = 1;
    runtime::BatchRunner single(config, small, sweights, sopts);
    for (std::size_t id = 0; id < inputs.size(); ++id) {
      if (!(single.run_one(inputs[id], id).output == results[id].output)) {
        std::cout << "FAIL: open-loop request " << id
                  << " differs from the sequential reference\n";
        ok = false;
      }
    }
  }

  std::cout << "\nself-checks: " << (ok ? "PASS" : "FAIL")
            << " (determinism, hockey stick, mixed-fleet ordering, "
               "bit-identity)\n";
  return ok ? 0 : 1;
}
