// Open-loop serving sweep: tail latency vs offered load (the hockey stick).
//
// Drives a 4-PCU fleet with seeded Poisson arrivals at offered loads from
// 0.1x to 1.2x of fleet capacity and reports, per load point, the latency
// distribution (p50/p99/p99.9), mean queueing delay and queue depth, mean
// per-PCU utilization, and offered vs achieved throughput. Below
// saturation the fleet tracks the offered load with flat tails; past
// ~1.0x the queue grows without bound over the run and p99 explodes —
// the behavior a closed all-at-once batch cannot show.
//
// A second sweep drives a heterogeneous fleet (2 paper-default "big" PCUs
// + 2 small_core "small" ones) under each dispatch policy at fixed load
// and reports p50/p99 per policy — the skew capability-aware dispatch is
// built to exploit.
//
// A third sweep drives a two-tenant SLO mix past fleet capacity
// (1.2x-1.5x) and contrasts FIFO earliest-free with EDF + load shedding:
// the SLO-aware front door must hold the interactive tenant's p99 inside
// its budget where FIFO lets the overload drag every tenant down. A final
// probe enables the autoscaler and checks the mean active fleet tracks
// offered load.
//
// A fourth sweep serves three registered models (LeNet-5, AlexNet, and a
// recalibration-heavy synthetic net) on one fleet, with a seeded
// work-balanced model mix at 1.5x overload. Model switches charge the
// weight-bank swap (the full serial reprogram), and on these models the
// swap rivals the steady-state interval — so model-blind least-loaded
// dispatch thrashes the banks while kModelAffinity parks each model on
// home PCUs. The self-check gates affinity throughput at >= 1.3x
// least-loaded at equal SLO attainment.
//
// The sweeps themselves are timing-only (BatchRunner::simulate_open_loop):
// the admission loop needs no functional inference, so each point can use
// thousands of requests. Three self-checks gate the exit code:
//
//  * determinism — re-simulating a sweep point reproduces every reported
//    number bitwise;
//  * bit-identity — a small functional open-loop batch matches the
//    sequential single-PCU reference output bit for bit;
//  * mixed-fleet ordering — capability-aware p99 beats earliest-free p99
//    on the skewed fleet at a load its capable subset absorbs.
//
// A telemetry probe re-runs the 1.35x SLO point with a runtime::Telemetry
// attached and gates three things: the instrumented report is bitwise
// identical to the bare one, two instrumented runs serialize byte-identical
// Chrome traces, and the wall-clock overhead of observing stays within
// 10 %. `--trace-out PATH` writes the probe's Chrome trace for
// scripts/trace_summary.py / Perfetto.
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "core/config.hpp"
#include "nn/models.hpp"
#include "nn/synth.hpp"
#include "runtime/arrival.hpp"
#include "runtime/batch_runner.hpp"
#include "runtime/telemetry.hpp"

using namespace pcnna;

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc)
      trace_out = argv[++i];
  }
  constexpr std::size_t kPcus = 4;
  constexpr std::size_t kRequestsPerPoint = 5000;
  constexpr std::uint64_t kArrivalSeed = 2027;

  const nn::Network net = nn::lenet5();
  Rng rng(2026);
  const nn::NetWeights weights = nn::make_network_weights(net, rng);
  const core::PcnnaConfig config = core::PcnnaConfig::paper_defaults();

  runtime::BatchRunnerOptions options;
  options.num_pcus = kPcus;
  options.fidelity = core::TimingFidelity::kFull;
  options.simulate_values = false;
  options.double_buffer = true;
  options.seed = 7;
  runtime::BatchRunner fleet(config, net, weights, options);

  const double capacity = fleet.simulate_open_loop({}).fleet_capacity_rps;

  benchutil::DualSink sink({"load", "offered", "achieved", "p50", "p99",
                            "p99.9", "mean wait", "queue depth", "util"},
                           "pcnna_open_loop.csv");
  benchutil::BenchJsonWriter json("open_loop", "BENCH_open_loop.json");

  bool ok = true;
  double p99_low = 0.0, p99_high = 0.0;
  for (int step = 1; step <= 12; ++step) {
    const double load = 0.1 * static_cast<double>(step);
    const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
        kRequestsPerPoint, load * capacity, kArrivalSeed + step);
    const runtime::OpenLoopReport r = fleet.simulate_open_loop(arrivals);

    if (step == 3) p99_low = r.latency.p99;
    if (step == 12) p99_high = r.latency.p99;

    double util_sum = 0.0;
    for (double u : r.utilization_per_pcu) util_sum += u;
    const double util_mean = util_sum / static_cast<double>(kPcus);

    sink.row({format_fixed(load, 1) + " x",
              format_count(r.offered_rps) + " req/s",
              format_count(r.achieved_rps) + " req/s",
              format_time(r.latency.p50), format_time(r.latency.p99),
              format_time(r.latency.p999), format_time(r.queue_wait.mean),
              format_fixed(r.mean_queue_depth, 2),
              format_fixed(100.0 * util_mean, 1) + " %"});

    const std::string point = "load_" + format_fixed(load, 1) + "x";
    json.row(point, "offered_rps", r.offered_rps, "req/s");
    json.row(point, "achieved_rps", r.achieved_rps, "req/s");
    json.row(point, "latency_p50", r.latency.p50, "s");
    json.row(point, "latency_p99", r.latency.p99, "s");
    json.row(point, "latency_p999", r.latency.p999, "s");
    json.row(point, "queue_wait_mean", r.queue_wait.mean, "s");
    json.row(point, "mean_queue_depth", r.mean_queue_depth, "requests");
    json.row(point, "utilization_mean", util_mean, "fraction");

    // Determinism self-check on the mid-sweep point: a re-simulation must
    // reproduce the schedule bitwise.
    if (step == 6) {
      const runtime::OpenLoopReport again = fleet.simulate_open_loop(arrivals);
      if (again.makespan != r.makespan || again.latency.p99 != r.latency.p99 ||
          again.latency.p999 != r.latency.p999 ||
          again.mean_queue_depth != r.mean_queue_depth ||
          again.utilization_per_pcu != r.utilization_per_pcu) {
        std::cout << "FAIL: re-simulated load point is not bit-identical\n";
        ok = false;
      }
    }
  }
  sink.print("Open-loop serving - " + net.name() + ", " +
             std::to_string(kPcus) + " PCUs, " +
             std::to_string(kRequestsPerPoint) +
             " Poisson requests per point (fleet capacity " +
             format_count(capacity) + " req/s)");
  json.row("fleet", "capacity_rps", capacity, "req/s");

  // --- Mixed-fleet sweep: 2 big + 2 small PCUs, one row set per dispatch
  // policy at a fixed offered load the capable (big) subset can absorb.
  // The skew is the point: earliest-free parks requests on the slow PCUs,
  // least-loaded and capability-aware route around them.
  {
    runtime::PcuSpec big;
    big.config = config;
    big.tag = "big";
    runtime::PcuSpec small;
    small.config = core::PcnnaConfig::small_core();
    small.tag = "small";
    const std::vector<runtime::PcuSpec> specs = {big, big, small, small};

    benchutil::DualSink hsink({"policy", "offered", "achieved", "p50", "p99",
                               "mean wait", "big reqs", "small reqs"},
                              "pcnna_open_loop_hetero.csv");

    double ef_p99 = 0.0, cap_p99 = 0.0, big_capacity = 0.0;
    for (const runtime::DispatchPolicy policy :
         runtime::kAllDispatchPolicies) {
      runtime::BatchRunnerOptions hopts = options;
      hopts.dispatch = policy;
      runtime::BatchRunner hetero(specs, net, weights, hopts);
      if (big_capacity == 0.0) {
        big_capacity =
            2.0 / hetero.pool().pcu(0).request_interval_overlapped();
      }
      const runtime::OpenLoopReport r = hetero.simulate_open_loop(
          runtime::poisson_arrivals(kRequestsPerPoint, 0.4 * big_capacity,
                                    kArrivalSeed));
      if (policy == runtime::DispatchPolicy::kEarliestFree)
        ef_p99 = r.latency.p99;
      if (policy == runtime::DispatchPolicy::kCapabilityAware)
        cap_p99 = r.latency.p99;

      hsink.row({runtime::dispatch_policy_name(policy),
                 format_count(r.offered_rps) + " req/s",
                 format_count(r.achieved_rps) + " req/s",
                 format_time(r.latency.p50), format_time(r.latency.p99),
                 format_time(r.queue_wait.mean),
                 std::to_string(r.per_pcu[0].requests +
                                r.per_pcu[1].requests),
                 std::to_string(r.per_pcu[2].requests +
                                r.per_pcu[3].requests)});

      const std::string point =
          std::string("hetero_") + runtime::dispatch_policy_name(policy);
      json.row(point, "offered_rps", r.offered_rps, "req/s");
      json.row(point, "achieved_rps", r.achieved_rps, "req/s");
      json.row(point, "latency_p50", r.latency.p50, "s");
      json.row(point, "latency_p99", r.latency.p99, "s");
      json.row(point, "queue_wait_mean", r.queue_wait.mean, "s");
      json.row(point, "small_pcu_requests",
               static_cast<double>(r.per_pcu[2].requests +
                                   r.per_pcu[3].requests),
               "requests");
    }
    hsink.print("Mixed fleet (2 big + 2 small_core PCUs) - " + net.name() +
                ", " + std::to_string(kRequestsPerPoint) +
                " Poisson requests at 0.4x big-subset capacity");

    if (!(cap_p99 < ef_p99)) {
      std::cout << "FAIL: capability-aware p99 (" << format_time(cap_p99)
                << ") does not beat earliest-free p99 ("
                << format_time(ef_p99) << ") on the skewed fleet\n";
      ok = false;
    }
  }

  // --- SLO sweep: a two-tenant mix (20 % interactive with a tight latency
  // budget, 80 % best-effort with a loose one) driven past fleet capacity.
  // Under overload the queue grows without bound, so FIFO earliest-free
  // drags every tenant's p99 with it; class-partitioned EDF plus load
  // shedding sacrifices expired best-effort work to hold the interactive
  // SLO. The self-check gates exactly that split at every overload point.
  {
    const double interval = fleet.pool().pcu(0).request_interval_overlapped();
    const double warmup = fleet.pool().pcu(0).warmup_time();
    const double interactive_budget = warmup + 6.0 * interval;

    std::vector<runtime::TenantClass> mix(2);
    mix[0].tenant = 0;
    mix[0].priority = runtime::PriorityClass::kInteractive;
    mix[0].weight = 0.2;
    mix[0].slo_budget = interactive_budget;
    mix[1].tenant = 1;
    mix[1].priority = runtime::PriorityClass::kBestEffort;
    mix[1].weight = 0.8;
    mix[1].slo_budget = warmup + 60.0 * interval;

    benchutil::DualSink ssink({"load", "policy", "achieved", "shed",
                               "int p99", "int SLO", "be SLO"},
                              "pcnna_open_loop_slo.csv");

    const auto tenant_slice = [](const runtime::OpenLoopReport& r,
                                 std::uint32_t tenant) {
      for (const runtime::TenantBreakdown& t : r.per_tenant)
        if (t.tenant == tenant) return t;
      return runtime::TenantBreakdown{};
    };

    const double overloads[] = {1.2, 1.35, 1.5};
    for (int i = 0; i < 3; ++i) {
      const double load = overloads[i];
      const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
          kRequestsPerPoint, load * capacity, kArrivalSeed + 100 + i);
      const runtime::SloSchedule slos =
          runtime::assign_tenants(arrivals, mix, kArrivalSeed + 200 + i);

      for (const bool slo_aware : {false, true}) {
        runtime::BatchRunnerOptions sopts = options;
        sopts.dispatch = slo_aware ? runtime::DispatchPolicy::kEdf
                                   : runtime::DispatchPolicy::kEarliestFree;
        sopts.shed_expired = slo_aware;
        runtime::BatchRunner runner(config, net, weights, sopts);
        const runtime::OpenLoopReport r =
            runner.simulate_open_loop(arrivals, slos);
        const runtime::TenantBreakdown interactive = tenant_slice(r, 0);
        const runtime::TenantBreakdown best_effort = tenant_slice(r, 1);

        ssink.row({format_fixed(load, 2) + " x",
                   slo_aware ? "edf + shed" : "earliest-free",
                   format_count(r.achieved_rps) + " req/s",
                   format_fixed(100.0 * r.shed_rate, 1) + " %",
                   format_time(interactive.latency.p99),
                   format_fixed(100.0 * interactive.slo_attainment, 1) + " %",
                   format_fixed(100.0 * best_effort.slo_attainment, 1) +
                       " %"});

        const std::string point = "slo_" + format_fixed(load, 2) + "x_" +
                                  (slo_aware ? "edf_shed" : "earliest_free");
        json.row(point, "achieved_rps", r.achieved_rps, "req/s");
        json.row(point, "shed_rate", r.shed_rate, "fraction");
        json.row(point, "interactive_p99", interactive.latency.p99, "s");
        json.row(point, "interactive_slo_attainment",
                 interactive.slo_attainment, "fraction");
        json.row(point, "best_effort_slo_attainment",
                 best_effort.slo_attainment, "fraction");
        json.row(point, "slo_attainment", r.slo_attainment, "fraction");

        if (slo_aware) {
          if (!(interactive.latency.p99 <= interactive_budget &&
                interactive.slo_attainment >= 0.95)) {
            std::cout << "FAIL: edf+shed does not hold the interactive SLO "
                         "at "
                      << format_fixed(load, 2) << "x (p99 "
                      << format_time(interactive.latency.p99) << " vs budget "
                      << format_time(interactive_budget) << ", attainment "
                      << format_fixed(100.0 * interactive.slo_attainment, 1)
                      << " %)\n";
            ok = false;
          }
        } else if (!(interactive.latency.p99 > interactive_budget)) {
          std::cout << "FAIL: earliest-free unexpectedly holds the "
                       "interactive p99 at "
                    << format_fixed(load, 2) << "x overload ("
                    << format_time(interactive.latency.p99) << " <= budget "
                    << format_time(interactive_budget) << ")\n";
          ok = false;
        }
      }
    }
    ssink.print("SLO-aware serving under overload - " + net.name() + ", " +
                std::to_string(kPcus) + " PCUs, 20 % interactive (budget " +
                format_time(interactive_budget) + ") + 80 % best-effort");
    json.row("slo", "interactive_budget", interactive_budget, "s");

    // --- Telemetry probe: observation must be invisible and near-free. ---
    // Re-runs the 1.35x EDF+shed point bare and instrumented: the reports
    // must match bitwise, two instrumented runs must serialize identical
    // Chrome traces, and the best-of-5 wall-clock overhead of observing
    // must stay within 10 % (small absolute floor so millisecond-scale
    // runs don't gate on timer noise).
    {
      const runtime::ArrivalSchedule parrivals = runtime::poisson_arrivals(
          kRequestsPerPoint, 1.35 * capacity, kArrivalSeed + 100 + 1);
      const runtime::SloSchedule pslos =
          runtime::assign_tenants(parrivals, mix, kArrivalSeed + 200 + 1);
      runtime::BatchRunnerOptions popts = options;
      popts.dispatch = runtime::DispatchPolicy::kEdf;
      popts.shed_expired = true;

      const auto run = [&](runtime::Telemetry* telemetry) {
        runtime::BatchRunnerOptions o = popts;
        o.telemetry = telemetry;
        runtime::BatchRunner runner(config, net, weights, o);
        return runner.simulate_open_loop(parrivals, pslos);
      };

      const runtime::OpenLoopReport bare = run(nullptr);
      runtime::Telemetry telemetry;
      const runtime::OpenLoopReport instrumented = run(&telemetry);
      bool identical =
          bare.makespan == instrumented.makespan &&
          bare.achieved_rps == instrumented.achieved_rps &&
          bare.latency.p99 == instrumented.latency.p99 &&
          bare.latency.p999 == instrumented.latency.p999 &&
          bare.shed_requests == instrumented.shed_requests &&
          bare.slo_attainment == instrumented.slo_attainment &&
          bare.per_pcu.size() == instrumented.per_pcu.size();
      if (identical) {
        for (std::size_t p = 0; p < bare.per_pcu.size(); ++p)
          identical = identical &&
                      bare.per_pcu[p].busy_time ==
                          instrumented.per_pcu[p].busy_time &&
                      bare.per_pcu[p].requests ==
                          instrumented.per_pcu[p].requests;
      }
      if (!identical) {
        std::cout << "FAIL: telemetry perturbed the 1.35x SLO schedule\n";
        ok = false;
      }

      runtime::Telemetry again;
      run(&again);
      std::ostringstream trace_a, trace_b;
      telemetry.write_chrome_trace(trace_a);
      again.write_chrome_trace(trace_b);
      if (trace_a.str() != trace_b.str()) {
        std::cout << "FAIL: two instrumented runs serialized different "
                     "Chrome traces\n";
        ok = false;
      }

      const auto best_of = [&](bool with_telemetry) {
        double best = std::numeric_limits<double>::infinity();
        for (int rep = 0; rep < 5; ++rep) {
          const auto t0 = std::chrono::steady_clock::now();
          if (with_telemetry) {
            runtime::Telemetry fresh;
            run(&fresh);
          } else {
            run(nullptr);
          }
          const std::chrono::duration<double> dt =
              std::chrono::steady_clock::now() - t0;
          best = std::min(best, dt.count());
        }
        return best;
      };
      const double base_s = best_of(false);
      const double instrumented_s = best_of(true);
      constexpr double kNoiseFloorS = 2e-3;
      const bool within_budget =
          instrumented_s <= 1.10 * std::max(base_s, kNoiseFloorS);
      if (!within_budget) {
        std::cout << "FAIL: telemetry overhead "
                  << format_time(instrumented_s - base_s) << " on a "
                  << format_time(base_s)
                  << " run exceeds the 10 % budget\n";
        ok = false;
      }

      benchutil::DualSink tsink({"metric", "value"},
                                "pcnna_open_loop_telemetry.csv");
      tsink.row({"spans", std::to_string(telemetry.spans().size())});
      tsink.row({"queue depth samples",
                 std::to_string(telemetry.queue_depth_samples().size())});
      tsink.row({"bare best-of-5", format_time(base_s)});
      tsink.row({"instrumented best-of-5", format_time(instrumented_s)});
      tsink.row({"bitwise identical", identical ? "yes" : "NO"});
      tsink.print("Telemetry probe - 1.35x EDF+shed, " + net.name() + ", " +
                  std::to_string(kPcus) + " PCUs");

      // Host wall-clock rows are machine-dependent by nature; the stable
      // rows are the span/event counts and the pass/fail gates.
      json.row("telemetry", "telemetry_spans",
               static_cast<double>(telemetry.spans().size()), "spans");
      json.row("telemetry", "telemetry_queue_depth_samples",
               static_cast<double>(telemetry.queue_depth_samples().size()),
               "samples");
      json.row("telemetry", "telemetry_bitwise_identical",
               identical ? 1.0 : 0.0, "bool");
      json.row("telemetry", "telemetry_overhead_within_budget",
               within_budget ? 1.0 : 0.0, "bool");

      if (!trace_out.empty()) {
        std::ofstream out(trace_out);
        telemetry.write_chrome_trace(out);
        if (!out) {
          std::cout << "FAIL: could not write " << trace_out << "\n";
          ok = false;
        } else {
          std::cout << "(Chrome trace in " << trace_out << ")\n";
        }
      }
    }
  }

  // --- Multi-model sweep: three registered models on one 6-PCU fleet at
  // 1.5x overload. The mix is work-balanced (each model offers ~1/3 of the
  // total service time), so affinity can partition the fleet into per-model
  // homes; model-blind policies keep reprogramming banks instead.
  {
    constexpr std::size_t kMmPcus = 6;
    constexpr std::size_t kMmRequests = 4000;

    // Synthetic recalibration-heavy net: small feature maps (few kernel
    // locations, little ADC/DAC work) with many channels (a big weight
    // bank), so weight programming dominates — the regime where the swap
    // cost rivals the steady-state interval.
    nn::Network synth("synth_recal", nn::Shape4{1, 64, 8, 8});
    synth
        .add_conv({"s1", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/64,
                   /*K=*/64})
        .add_relu();
    synth
        .add_conv({"s2", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/64,
                   /*K=*/64})
        .add_relu();
    synth.add_conv({"s3", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1, /*nc=*/64,
                    /*K=*/64});
    Rng mm_rng(404);
    const nn::NetWeights synth_weights =
        nn::make_network_weights(synth, mm_rng);
    const nn::Network big = nn::alexnet();
    const nn::NetWeights big_weights = nn::make_network_weights(big, mm_rng);

    benchutil::DualSink msink({"policy", "achieved", "p99", "swaps",
                               "swap time", "SLO"},
                              "pcnna_open_loop_multimodel.csv");

    double ll_rps = 0.0, affinity_rps = 0.0;
    double ll_slo = 0.0, affinity_slo = 0.0;
    std::size_t ll_swaps = 0, affinity_swaps = 0;
    double swap_over_interval = 0.0;
    for (const runtime::DispatchPolicy policy :
         {runtime::DispatchPolicy::kEarliestFree,
          runtime::DispatchPolicy::kLeastLoaded,
          runtime::DispatchPolicy::kModelAffinity}) {
      runtime::BatchRunnerOptions mopts = options;
      mopts.num_pcus = kMmPcus;
      mopts.dispatch = policy;
      runtime::BatchRunner mm(config, net, weights, mopts);
      mm.register_model(big, big_weights);
      mm.register_model(synth, synth_weights);

      // Work-balanced mix: p_m proportional to 1/interval_m, so each model
      // contributes ~1/3 of the offered service time. Offered rate is
      // 1.5x the fleet's work capacity for that mix.
      double intervals[3], inv_sum = 0.0;
      for (std::uint32_t m = 0; m < 3; ++m) {
        intervals[m] = mm.pool().pcu(0).request_interval_overlapped(m);
        inv_sum += 1.0 / intervals[m];
      }
      if (swap_over_interval == 0.0) {
        swap_over_interval =
            mm.pool().pcu(0).swap_time(2) / intervals[2];
      }
      const double mean_service =
          3.0 / inv_sum; // sum_m p_m * interval_m with p_m ~ 1/interval_m
      const double offered =
          1.5 * static_cast<double>(kMmPcus) / mean_service;

      const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
          kMmRequests, offered, kArrivalSeed + 400);
      runtime::ModelSchedule models(kMmRequests, 0);
      Rng pick(kArrivalSeed + 500);
      for (std::size_t id = 0; id < kMmRequests; ++id) {
        const double u = pick.uniform() * inv_sum;
        models[id] = u < 1.0 / intervals[0]
                         ? 0u
                         : (u < 1.0 / intervals[0] + 1.0 / intervals[1]
                                ? 1u
                                : 2u);
      }

      const runtime::OpenLoopReport r =
          mm.simulate_open_loop(arrivals, {}, models);
      if (policy == runtime::DispatchPolicy::kLeastLoaded) {
        ll_rps = r.achieved_rps;
        ll_slo = r.slo_attainment;
        ll_swaps = r.model_swaps;
      }
      if (policy == runtime::DispatchPolicy::kModelAffinity) {
        affinity_rps = r.achieved_rps;
        affinity_slo = r.slo_attainment;
        affinity_swaps = r.model_swaps;
      }

      msink.row({runtime::dispatch_policy_name(policy),
                 format_count(r.achieved_rps) + " req/s",
                 format_time(r.latency.p99),
                 std::to_string(r.model_swaps),
                 format_time(r.model_swap_time),
                 format_fixed(100.0 * r.slo_attainment, 1) + " %"});

      const std::string point =
          std::string("multimodel_") + runtime::dispatch_policy_name(policy);
      json.row(point, "achieved_rps", r.achieved_rps, "req/s");
      json.row(point, "latency_p99", r.latency.p99, "s");
      json.row(point, "model_swaps", static_cast<double>(r.model_swaps),
               "swaps");
      json.row(point, "model_swap_time", r.model_swap_time, "s");
      json.row(point, "slo_attainment", r.slo_attainment, "fraction");
    }
    msink.print("Multi-model serving (LeNet-5 + AlexNet + synth_recal, " +
                std::to_string(kMmPcus) + " PCUs, work-balanced mix at "
                "1.5x overload; synth swap/interval " +
                format_fixed(swap_over_interval, 2) + ")");
    json.row("multimodel", "affinity_speedup_vs_least_loaded",
             ll_rps > 0.0 ? affinity_rps / ll_rps : 0.0, "x");
    json.row("multimodel", "synth_swap_over_interval", swap_over_interval,
             "fraction");

    if (!(affinity_rps >= 1.3 * ll_rps && affinity_slo == ll_slo)) {
      std::cout << "FAIL: model-affinity throughput ("
                << format_count(affinity_rps)
                << " req/s) is not >= 1.3x least-loaded ("
                << format_count(ll_rps) << " req/s) at equal SLO attainment ("
                << affinity_slo << " vs " << ll_slo << ")\n";
      ok = false;
    }
    if (!(affinity_swaps * 10 < ll_swaps)) {
      std::cout << "FAIL: model-affinity swaps (" << affinity_swaps
                << ") are not an order of magnitude below least-loaded ("
                << ll_swaps << ")\n";
      ok = false;
    }
  }

  // --- Autoscaler probe: the same fleet with elastic sizing enabled must
  // run lean at light load and grow toward the envelope under heavy load.
  {
    runtime::BatchRunnerOptions aopts = options;
    aopts.autoscaler.enabled = true;
    aopts.autoscaler.min_active = 1;
    aopts.autoscaler.max_active = kPcus;
    aopts.autoscaler.backlog_per_pcu = 2.0;
    aopts.autoscaler.shrink_after_idle =
        16.0 * fleet.pool().pcu(0).request_interval_overlapped();
    runtime::BatchRunner elastic(config, net, weights, aopts);

    double mean_active_light = 0.0, mean_active_heavy = 0.0;
    const double probe_loads[] = {0.25, 0.9};
    for (int i = 0; i < 2; ++i) {
      const double load = probe_loads[i];
      const runtime::OpenLoopReport r = elastic.simulate_open_loop(
          runtime::poisson_arrivals(kRequestsPerPoint, load * capacity,
                                    kArrivalSeed + 300 + i));
      (i == 0 ? mean_active_light : mean_active_heavy) =
          r.autoscaler.mean_active;
      const std::string point = "autoscaler_" + format_fixed(load, 2) + "x";
      json.row(point, "mean_active", r.autoscaler.mean_active, "pcus");
      json.row(point, "scale_ups",
               static_cast<double>(r.autoscaler.scale_ups), "events");
      json.row(point, "scale_downs",
               static_cast<double>(r.autoscaler.scale_downs), "events");
      json.row(point, "latency_p99", r.latency.p99, "s");
    }
    if (!(mean_active_light < mean_active_heavy &&
          mean_active_heavy <= static_cast<double>(kPcus))) {
      std::cout << "FAIL: autoscaler mean active fleet at 0.25x ("
                << format_fixed(mean_active_light, 2)
                << ") does not sit below 0.9x ("
                << format_fixed(mean_active_heavy, 2) << ")\n";
      ok = false;
    }
  }

  // --- Fault-injection MTBF sweep: crash-heavy seeded Poisson faults over
  // the arrival horizon at a fixed 0.6x load, harshening MTBF point by
  // point. Each point serves the same stream twice: fault-blind (the
  // dispatcher keeps routing to dead PCUs and nothing is retried — every
  // request a crash touches is permanently lost) and with the full
  // tolerance stack (health-aware dispatch, retry with backoff,
  // quarantine/repair). The self-check gates the tentpole claim: where the
  // blind path bleeds requests, retry + quarantine still serves >= 95 %.
  {
    const double interval = fleet.pool().pcu(0).request_interval_overlapped();
    const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
        kRequestsPerPoint, 0.6 * capacity, kArrivalSeed + 600);

    benchutil::DualSink fsink({"MTBF", "mode", "served", "failed", "retries",
                               "recovered", "avail", "retry p99"},
                              "pcnna_open_loop_faults.csv");

    std::size_t blind_failed_total = 0;
    const double mtbf_fractions[] = {0.5, 0.25, 0.125};
    for (int i = 0; i < 3; ++i) {
      runtime::FaultModel hazard;
      hazard.mtbf = mtbf_fractions[i] * arrivals.back();
      hazard.horizon = arrivals.back();
      hazard.transient_weight = 1.0;
      hazard.degrade_weight = 1.0;
      hazard.crash_weight = 2.0;
      hazard.degrade_severity = 1.5;
      hazard.mean_time_to_repair = arrivals.back() / 20.0;
      const runtime::FaultSchedule faults =
          runtime::poisson_faults(kPcus, hazard, kArrivalSeed + 700 + i);

      for (const bool tolerant : {false, true}) {
        runtime::BatchRunnerOptions fopts = options;
        fopts.faults.schedule = faults;
        fopts.faults.health_aware = tolerant;
        if (tolerant) {
          fopts.faults.detection_latency = interval;
          fopts.faults.retry.max_retries = 3;
          fopts.faults.retry.backoff_base = 0.5 * interval;
          fopts.faults.repair_time = 4.0 * interval;
        }
        runtime::BatchRunner runner(config, net, weights, fopts);
        const runtime::OpenLoopReport r = runner.simulate_open_loop(arrivals);

        const double served_fraction =
            static_cast<double>(r.served_requests) /
            static_cast<double>(kRequestsPerPoint);
        double avail_sum = 0.0;
        for (const runtime::PcuHealthStats& h : r.fault.per_pcu)
          avail_sum += h.availability;
        const double avail_mean =
            avail_sum / static_cast<double>(r.fault.per_pcu.size());
        if (!tolerant) blind_failed_total += r.failed_requests;

        fsink.row({format_time(hazard.mtbf),
                   tolerant ? "tolerant" : "blind",
                   format_fixed(100.0 * served_fraction, 2) + " %",
                   std::to_string(r.failed_requests),
                   std::to_string(r.fault.retries),
                   std::to_string(r.fault.recovered_requests),
                   format_fixed(100.0 * avail_mean, 1) + " %",
                   format_time(r.retry_latency.p99)});

        const std::string point = "fault_mtbf_" +
                                  format_fixed(mtbf_fractions[i], 3) + "x_" +
                                  (tolerant ? "tolerant" : "blind");
        json.row(point, "served_fraction", served_fraction, "fraction");
        json.row(point, "failed_requests",
                 static_cast<double>(r.failed_requests), "requests");
        json.row(point, "retries", static_cast<double>(r.fault.retries),
                 "retries");
        json.row(point, "recovered_requests",
                 static_cast<double>(r.fault.recovered_requests), "requests");
        json.row(point, "availability_mean", avail_mean, "fraction");
        json.row(point, "retry_latency_p99", r.retry_latency.p99, "s");

        if (tolerant && !(served_fraction >= 0.95)) {
          std::cout << "FAIL: retry + quarantine serves only "
                    << format_fixed(100.0 * served_fraction, 2)
                    << " % at MTBF " << format_time(hazard.mtbf)
                    << " (gate: >= 95 %)\n";
          ok = false;
        }
      }
    }
    fsink.print("Fault injection - " + net.name() + ", " +
                std::to_string(kPcus) + " PCUs at 0.6x load, crash-heavy "
                "Poisson faults (fault-blind vs health-aware + retry + "
                "quarantine)");
    if (blind_failed_total == 0) {
      std::cout << "FAIL: the fault-blind baseline lost nothing — the sweep "
                   "is not exercising crashes\n";
      ok = false;
    }

    // Retry bit-identity: a functional crash run re-executes its victim
    // from the same per-request seed, so every served output equals the
    // sequential reference bit for bit.
    {
      const nn::Network small = nn::tiny_cnn();
      Rng srng(19);
      const nn::NetWeights sweights = nn::make_network_weights(small, srng);
      std::vector<nn::Tensor> inputs;
      for (std::size_t i = 0; i < 6; ++i)
        inputs.push_back(nn::make_network_input(small, srng));

      runtime::BatchRunnerOptions copts;
      copts.num_pcus = 1;
      copts.simulate_values = true;
      copts.seed = 5;
      runtime::BatchRunner reference(config, small, sweights, copts);
      const double sinterval =
          reference.pool().pcu(0).request_interval_overlapped();
      const double swarmup = reference.pool().pcu(0).warmup_time();
      copts.faults.schedule = {
          {swarmup + 1.5 * sinterval, 0, runtime::FaultKind::kCrash, 1.0},
          {swarmup + 3.5 * sinterval, 0, runtime::FaultKind::kRecover, 1.0},
      };
      runtime::BatchRunner crashy(config, small, sweights, copts);
      runtime::OpenLoopReport crash_report;
      const auto results = crashy.run_open_loop(
          inputs, runtime::ArrivalSchedule(inputs.size(), 0.0),
          &crash_report);
      if (crash_report.fault.recovered_requests == 0) {
        std::cout << "FAIL: the functional crash probe recovered nothing\n";
        ok = false;
      }
      for (std::size_t id = 0; id < inputs.size(); ++id) {
        if (results[id].failed) continue;
        if (!(reference.run_one(inputs[id], id).output ==
              results[id].output)) {
          std::cout << "FAIL: retried request " << id
                    << " differs from the sequential reference\n";
          ok = false;
        }
      }
    }
  }

  // --- Pipeline sweep: two recalibration-heavy models whose combined
  // weight banks exceed one PCU's capacity, so data-parallel serving of
  // the pair must keep reprogramming microrings. kPipeline pins each
  // model across its own 3-stage PCU chain instead: pin once, stream
  // images, zero steady-state swaps.
  {
    constexpr std::size_t kPipePcus = 6;
    constexpr std::size_t kPipeRequests = 4000;

    const auto make_heavy = [](const std::string& name) {
      nn::Network heavy(name, nn::Shape4{1, 64, 8, 8});
      heavy
          .add_conv({name + "1", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                     /*nc=*/64, /*K=*/64})
          .add_relu();
      heavy
          .add_conv({name + "2", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                     /*nc=*/64, /*K=*/64})
          .add_relu();
      heavy.add_conv({name + "3", /*n=*/8, /*m=*/3, /*p=*/1, /*s=*/1,
                      /*nc=*/64, /*K=*/64});
      return heavy;
    };
    const nn::Network pipe_a = make_heavy("pipe_a");
    const nn::Network pipe_b = make_heavy("pipe_b");
    Rng prng(606);
    const nn::NetWeights pipe_a_weights = nn::make_network_weights(pipe_a, prng);
    const nn::NetWeights pipe_b_weights = nn::make_network_weights(pipe_b, prng);

    benchutil::DualSink psink({"policy", "achieved", "p99", "swaps",
                               "stage spans", "pin time"},
                              "pcnna_open_loop_pipeline.csv");

    double ll_rps = 0.0, pipe_rps = 0.0;
    std::size_t ll_swaps = 0, pipe_swaps = 0, pipe_replacements = 0;
    for (const runtime::DispatchPolicy policy :
         {runtime::DispatchPolicy::kLeastLoaded,
          runtime::DispatchPolicy::kModelAffinity,
          runtime::DispatchPolicy::kPipeline}) {
      runtime::BatchRunnerOptions popts = options;
      popts.num_pcus = kPipePcus;
      popts.dispatch = policy;
      runtime::BatchRunner pp(config, pipe_a, pipe_a_weights, popts);
      pp.register_model(pipe_b, pipe_b_weights);
      if (policy == runtime::DispatchPolicy::kPipeline) {
        pp.build_pipeline(/*model=*/0, {0, 1, 2});
        pp.build_pipeline(/*model=*/1, {3, 4, 5});
      }

      // Offered load: 1.3x what six swap-free PCUs could absorb.
      const double interval =
          pp.pool().pcu(0).request_interval_overlapped(0);
      const double offered = 1.3 * static_cast<double>(kPipePcus) / interval;
      const runtime::ArrivalSchedule arrivals = runtime::poisson_arrivals(
          kPipeRequests, offered, kArrivalSeed + 600);
      runtime::ModelSchedule models(kPipeRequests, 0);
      Rng pick(kArrivalSeed + 700);
      for (std::size_t id = 0; id < kPipeRequests; ++id)
        models[id] = pick.uniform() < 0.5 ? 0u : 1u;

      const runtime::OpenLoopReport r =
          pp.simulate_open_loop(arrivals, {}, models);
      if (policy == runtime::DispatchPolicy::kLeastLoaded) {
        ll_rps = r.achieved_rps;
        ll_swaps = r.model_swaps;
      }
      if (policy == runtime::DispatchPolicy::kPipeline) {
        pipe_rps = r.achieved_rps;
        pipe_swaps = r.model_swaps;
        pipe_replacements = r.pipeline.replacements;
      }

      psink.row({runtime::dispatch_policy_name(policy),
                 format_count(r.achieved_rps) + " req/s",
                 format_time(r.latency.p99),
                 std::to_string(r.model_swaps),
                 std::to_string(r.pipeline.stage_spans),
                 format_time(r.pipeline.pin_time)});

      const std::string point =
          std::string("pipeline_") + runtime::dispatch_policy_name(policy);
      json.row(point, "achieved_rps", r.achieved_rps, "req/s");
      json.row(point, "latency_p99", r.latency.p99, "s");
      json.row(point, "model_swaps", static_cast<double>(r.model_swaps),
               "swaps");
      json.row(point, "stage_spans",
               static_cast<double>(r.pipeline.stage_spans), "spans");
      json.row(point, "stage_pin_time", r.pipeline.pin_time, "s");
      json.row(point, "stage_handoff_time", r.pipeline.handoff_time, "s");
    }
    psink.print("Pipeline-parallel serving (2x recal-heavy synth, " +
                std::to_string(kPipePcus) + " PCUs, 50/50 mix at 1.3x "
                "overload; two pinned 3-stage groups vs data parallelism)");
    json.row("pipeline", "speedup_vs_least_loaded",
             ll_rps > 0.0 ? pipe_rps / ll_rps : 0.0, "x");

    if (!(pipe_rps >= ll_rps)) {
      std::cout << "FAIL: pipeline throughput (" << format_count(pipe_rps)
                << " req/s) falls below data-parallel least-loaded ("
                << format_count(ll_rps) << " req/s)\n";
      ok = false;
    }
    if (pipe_swaps != 0 || pipe_replacements != 0) {
      std::cout << "FAIL: steady-state pinned pipeline reprogrammed banks ("
                << pipe_swaps << " swaps, " << pipe_replacements
                << " re-placements; gate: 0)\n";
      ok = false;
    }
    if (ll_swaps == 0) {
      std::cout << "FAIL: the data-parallel baseline never swapped — the "
                   "sweep is not exercising bank capacity pressure\n";
      ok = false;
    }
  }

  if (!json.finish()) ok = false;

  // The hockey stick: overload tails must tower over light-load tails.
  if (!(p99_high > 2.0 * p99_low)) {
    std::cout << "FAIL: p99 at 1.2x load (" << format_time(p99_high)
              << ") does not dominate p99 at 0.3x (" << format_time(p99_low)
              << ")\n";
    ok = false;
  }

  // Bit-identity self-check: open-loop functional outputs equal the
  // sequential single-PCU reference for the same request ids.
  {
    const nn::Network small = nn::tiny_cnn();
    Rng srng(11);
    const nn::NetWeights sweights = nn::make_network_weights(small, srng);
    std::vector<nn::Tensor> inputs;
    for (std::size_t i = 0; i < 6; ++i)
      inputs.push_back(nn::make_network_input(small, srng));

    runtime::BatchRunnerOptions fopts;
    fopts.num_pcus = 3;
    fopts.simulate_values = true;
    fopts.seed = 5;
    runtime::BatchRunner open(config, small, sweights, fopts);
    const double small_capacity =
        open.simulate_open_loop({}).fleet_capacity_rps;
    const auto results = open.run_open_loop(
        inputs,
        runtime::poisson_arrivals(inputs.size(), 0.5 * small_capacity, 1));

    runtime::BatchRunnerOptions sopts = fopts;
    sopts.num_pcus = 1;
    runtime::BatchRunner single(config, small, sweights, sopts);
    for (std::size_t id = 0; id < inputs.size(); ++id) {
      if (!(single.run_one(inputs[id], id).output == results[id].output)) {
        std::cout << "FAIL: open-loop request " << id
                  << " differs from the sequential reference\n";
        ok = false;
      }
    }
  }

  std::cout << "\nself-checks: " << (ok ? "PASS" : "FAIL")
            << " (determinism, hockey stick, mixed-fleet ordering, "
               "SLO overload split, multi-model affinity speedup, "
               "autoscaler sizing, fault-tolerance survival, retry "
               "bit-identity, pipeline speedup, bit-identity, telemetry "
               "purity + overhead)\n";
  return ok ? 0 : 1;
}
