// Ablation: fault tolerance of the photonic MAC (extension).
//
// Thermal tuners are the dominant yield risk of large MRR banks. This bench
// sweeps the stuck-heater rate through the functional simulator and reports
// the numerical damage: a heater stuck at the parked (zero-weight) drive
// silently zeroes its weight, so the convolution degrades gracefully rather
// than failing — the analog analogue of dropping synapses.
#include <iostream>

#include "bench_util.hpp"
#include "common/format.hpp"
#include "common/mathutil.hpp"
#include "common/rng.hpp"
#include "core/optical_conv_engine.hpp"
#include "nn/conv_ref.hpp"
#include "nn/synth.hpp"

using namespace pcnna;

int main() {
  const nn::ConvLayerParams layer{"probe", 12, 3, 1, 1, 8, 16};
  Rng rng(9001);
  const auto input = nn::make_input(layer, rng);
  const auto weights = nn::make_conv_weights(layer, rng);
  const auto bias = nn::make_conv_bias(layer, rng);
  const auto golden = nn::conv2d_direct(input, weights, bias, layer.s, layer.p);
  const double swing = golden.abs_max();

  benchutil::DualSink sink({"stuck-heater rate", "stuck rings", "of total",
                            "RMSE", "max |err|", "rel. to swing",
                            "mean cal. error"},
                           "pcnna_ablation_faults.csv");

  for (double rate : {0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2}) {
    core::PcnnaConfig cfg = core::PcnnaConfig::paper_defaults();
    cfg.enable_noise = false; // isolate the fault contribution
    cfg.stuck_ring_rate = rate;
    cfg.seed = 42;
    core::OpticalConvEngine engine(cfg);
    core::EngineStats stats;
    const auto out = engine.conv2d(input, weights, bias, layer.s, layer.p,
                                   &stats);
    const double err_rmse = rmse(out.data(), golden.data());
    sink.row({format_fixed(100.0 * rate, 1) + " %",
              std::to_string(stats.stuck_rings),
              format_fixed(100.0 * static_cast<double>(stats.stuck_rings) /
                               static_cast<double>(stats.rings_used),
                           2) +
                  " %",
              format_sci(err_rmse), format_sci(nn::max_abs_diff(out, golden)),
              format_fixed(100.0 * nn::max_abs_diff(out, golden) / swing, 2) +
                  " %",
              format_sci(stats.mean_calibration_error)});
  }
  sink.print(
      "Ablation - stuck-heater fault sweep (12x12x8 conv, 16 kernels, noise "
      "off)");

  std::cout << "\nReading: a stuck heater parks its ring at weight ~0, so"
               " degradation is smooth rather than catastrophic — but not"
               " cheap:\nRMSE grows roughly with sqrt(rate) (individual"
               " outputs lose whole weight terms), so yield matters; ~1% dead"
               " tuners\nalready costs a few percent RMS error. Sparse kernels"
               " (bench_ablation_sparsity) can absorb faults by mapping zero"
               " weights\nonto dead rings."
            << std::endl;
  return 0;
}
