// Shared helpers for the bench binaries.
//
// Every bench prints the rows of the paper artifact it reproduces through
// TextTable and mirrors them to a CSV file (pcnna_<bench>.csv in the working
// directory) for plotting.
#pragma once

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/json.hpp"
#include "common/report.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::benchutil {

/// Machine-readable bench results: a flat JSON array of
///   {"bench": ..., "config": ..., "metric": ..., "value": ..., "unit": ...}
/// rows written to BENCH_<name>.json in the working directory, so the perf
/// trajectory is comparable across PRs (schema documented in
/// docs/benchmarks.md; scripts/bench_summary.py prints these files).
class BenchJsonWriter {
 public:
  BenchJsonWriter(std::string bench, std::string path)
      : bench_(std::move(bench)), path_(std::move(path)) {}

  void row(const std::string& config, const std::string& metric, double value,
           const std::string& unit) {
    rows_.push_back(Row{config, metric, value, unit});
  }

  /// Write the collected rows and report the file path on stdout. Returns
  /// false (and says so) when the file could not be written — callers fold
  /// this into their self-check exit code so perf rows are never silently
  /// lost.
  [[nodiscard]] bool finish() {
    std::ofstream os(path_);
    JsonWriter json(os);
    json.begin_array();
    for (const Row& r : rows_) {
      json.begin_object();
      json.kv("bench", bench_);
      json.kv("config", r.config);
      json.kv("metric", r.metric);
      json.kv("value", r.value);
      json.kv("unit", r.unit);
      json.end_object();
    }
    json.end_array();
    json.finish();
    os << "\n";
    os.flush();
    if (!os) {
      std::cout << "FAIL: could not write " << path_ << "\n";
      return false;
    }
    std::cout << "(machine-readable rows in " << path_ << ")\n";
    return true;
  }

 private:
  struct Row {
    std::string config, metric;
    double value;
    std::string unit;
  };
  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
};

/// "n x n x nc" shape string, e.g. "224x224x3".
inline std::string shape_str(const nn::ConvLayerParams& layer) {
  return std::to_string(layer.n) + "x" + std::to_string(layer.n) + "x" +
         std::to_string(layer.nc);
}

/// "K @ m x m" kernel string, e.g. "96 @ 11x11".
inline std::string kernel_str(const nn::ConvLayerParams& layer) {
  return std::to_string(layer.K) + " @ " + std::to_string(layer.m) + "x" +
         std::to_string(layer.m);
}

/// Emit a table to stdout and mirror the same rows to `csv_path`.
class DualSink {
 public:
  DualSink(std::vector<std::string> headers, const std::string& csv_path)
      : table_(headers), csv_(csv_path, headers), csv_path_(csv_path) {}

  void row(std::vector<std::string> cells) {
    csv_.write_row(cells);
    table_.add_row(std::move(cells));
  }

  void separator() { table_.add_separator(); }

  void print(const std::string& title) {
    table_.print(std::cout, title);
    std::cout << "(rows mirrored to " << csv_path_ << ")\n";
  }

 private:
  TextTable table_;
  CsvWriter csv_;
  std::string csv_path_;
};

} // namespace pcnna::benchutil
