// Shared helpers for the bench binaries.
//
// Every bench prints the rows of the paper artifact it reproduces through
// TextTable and mirrors them to a CSV file (pcnna_<bench>.csv in the working
// directory) for plotting.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/format.hpp"
#include "common/report.hpp"
#include "nn/conv_params.hpp"

namespace pcnna::benchutil {

/// "n x n x nc" shape string, e.g. "224x224x3".
inline std::string shape_str(const nn::ConvLayerParams& layer) {
  return std::to_string(layer.n) + "x" + std::to_string(layer.n) + "x" +
         std::to_string(layer.nc);
}

/// "K @ m x m" kernel string, e.g. "96 @ 11x11".
inline std::string kernel_str(const nn::ConvLayerParams& layer) {
  return std::to_string(layer.K) + " @ " + std::to_string(layer.m) + "x" +
         std::to_string(layer.m);
}

/// Emit a table to stdout and mirror the same rows to `csv_path`.
class DualSink {
 public:
  DualSink(std::vector<std::string> headers, const std::string& csv_path)
      : table_(headers), csv_(csv_path, headers), csv_path_(csv_path) {}

  void row(std::vector<std::string> cells) {
    csv_.write_row(cells);
    table_.add_row(std::move(cells));
  }

  void separator() { table_.add_separator(); }

  void print(const std::string& title) {
    table_.print(std::cout, title);
    std::cout << "(rows mirrored to " << csv_path_ << ")\n";
  }

 private:
  TextTable table_;
  CsvWriter csv_;
  std::string csv_path_;
};

} // namespace pcnna::benchutil
