#!/usr/bin/env python3
"""Print the machine-readable bench results (BENCH_*.json) as a table.

Each BENCH_<name>.json file is a flat JSON array of rows:

    {"bench": ..., "config": ..., "metric": ..., "value": ..., "unit": ...}

emitted by the bench binaries (see docs/benchmarks.md for the schema and
the comparison methodology). Usage:

    python3 scripts/bench_summary.py [files-or-dirs ...]

With no arguments, globs BENCH_*.json in the current directory. Passing two
run directories side by side is the intended way to eyeball a perf
trajectory across PRs:

    python3 scripts/bench_summary.py old_run/ new_run/

Stdlib only; exits non-zero on malformed files or missing inputs.
"""

import glob
import json
import os
import sys


def collect(paths):
    """Expand args into BENCH_*.json file paths."""
    if not paths:
        paths = ["."]
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(glob.glob(os.path.join(p, "BENCH_*.json"))))
        else:
            files.append(p)
    return files


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    for row in rows:
        for key in ("bench", "config", "metric", "value", "unit"):
            if key not in row:
                raise ValueError(f"{path}: row missing key '{key}': {row}")
    return rows


def fmt_value(value, unit):
    if unit == "s":
        for scale, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"),
                              (1e-9, "ns")):
            if abs(value) >= scale:
                return f"{value / scale:.3g} {suffix}"
        return f"{value:.3g} s"
    return f"{value:.4g} {unit}"


def print_table(source, rows):
    header = ("config", "metric", "value")
    table = [(r["config"], r["metric"], fmt_value(r["value"], r["unit"]))
             for r in rows]
    widths = [max(len(h), *(len(t[i]) for t in table)) if table else len(h)
              for i, h in enumerate(header)]
    bench = rows[0]["bench"] if rows else "?"
    print(f"== {bench} ({source}) ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for t in table:
        print("  ".join(c.ljust(w) for c, w in zip(t, widths)))
    print()


def main(argv):
    files = collect(argv[1:])
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    status = 0
    for path in files:
        try:
            print_table(path, load_rows(path))
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
