#!/usr/bin/env python3
"""Print the machine-readable bench results (BENCH_*.json) as a table.

Each BENCH_<name>.json file is a flat JSON array of rows:

    {"bench": ..., "config": ..., "metric": ..., "value": ..., "unit": ...}

emitted by the bench binaries (see docs/benchmarks.md for the schema and
the comparison methodology). Usage:

    python3 scripts/bench_summary.py [files-or-dirs ...]

With no arguments, globs BENCH_*.json in the current directory. Passing two
run directories side by side is the intended way to eyeball a perf
trajectory across PRs:

    python3 scripts/bench_summary.py old_run/ new_run/

With --baseline, each current row is also diffed against the committed
reference results (bench/baselines/ holds the seed run):

    python3 scripts/bench_summary.py build/ --baseline bench/baselines

The diff is warn-only by default: rows drifting more than WARN_FRACTION
from the baseline, and rows missing on either side, are reported on stderr
but do not affect the exit code (benches gate their own regressions via
self-checks; machine speed makes absolute timing diffs advisory).

With --fail-on-regression PCT the diff becomes a gate: rows drifting more
than PCT percent from the baseline in either direction, and baseline rows
missing from the current run, fail the process with exit code 1. New rows
with no baseline stay informational (they appear whenever a PR adds a
sweep). CI release builds use this to hold the committed reference run:

    python3 scripts/bench_summary.py build/ --baseline bench/baselines \\
        --fail-on-regression 25

Stdlib only; exits non-zero on malformed files or missing inputs.
"""

import glob
import json
import os
import sys

# Relative drift that earns a stderr warning in --baseline mode.
WARN_FRACTION = 0.10


def collect(paths):
    """Expand args into BENCH_*.json file paths."""
    if not paths:
        paths = ["."]
    files = []
    for p in paths:
        if os.path.isdir(p):
            files.extend(sorted(glob.glob(os.path.join(p, "BENCH_*.json"))))
        else:
            files.append(p)
    return files


def load_rows(path):
    with open(path) as f:
        rows = json.load(f)
    if not isinstance(rows, list):
        raise ValueError(f"{path}: expected a JSON array of rows")
    for row in rows:
        for key in ("bench", "config", "metric", "value", "unit"):
            if key not in row:
                raise ValueError(f"{path}: row missing key '{key}': {row}")
    return rows


def fmt_value(value, unit):
    if unit == "s":
        for scale, suffix in ((1.0, "s"), (1e-3, "ms"), (1e-6, "us"),
                              (1e-9, "ns")):
            if abs(value) >= scale:
                return f"{value / scale:.3g} {suffix}"
        return f"{value:.3g} s"
    return f"{value:.4g} {unit}"


def print_table(source, rows):
    header = ("config", "metric", "value")
    table = [(r["config"], r["metric"], fmt_value(r["value"], r["unit"]))
             for r in rows]
    widths = [max(len(h), *(len(t[i]) for t in table)) if table else len(h)
              for i, h in enumerate(header)]
    bench = rows[0]["bench"] if rows else "?"
    print(f"== {bench} ({source}) ==")
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for t in table:
        print("  ".join(c.ljust(w) for c, w in zip(t, widths)))
    print()


def index_rows(rows):
    """Key rows by (bench, config, metric) for baseline lookup."""
    return {(r["bench"], r["config"], r["metric"]): r for r in rows}


def diff_against_baseline(current, baseline, fail_fraction=None):
    """Compare two row indexes against the warn (and optional fail)
    thresholds.

    Returns (warnings, failures): drift beyond WARN_FRACTION always lands
    in warnings; when fail_fraction is set, drift beyond it and baseline
    rows missing from the current run land in failures instead. New rows
    are never failures — they appear whenever a PR adds a sweep.
    """
    warnings, failures = [], []

    def drift(message, rel):
        if fail_fraction is not None and abs(rel) > fail_fraction:
            failures.append(message)
        else:
            warnings.append(message)

    for key, row in sorted(current.items()):
        base = baseline.get(key)
        if base is None:
            warnings.append("new row (no baseline): "
                            f"{key[0]}/{key[1]}/{key[2]}")
            continue
        base_value = base["value"]
        if base_value == 0:
            if row["value"] != 0:
                drift(f"drift {key[0]}/{key[1]}/{key[2]}: baseline 0 -> "
                      f"{fmt_value(row['value'], row['unit'])}",
                      rel=float("inf"))
            continue
        rel = (row["value"] - base_value) / abs(base_value)
        if abs(rel) > WARN_FRACTION:
            drift(f"drift {key[0]}/{key[1]}/{key[2]}: "
                  f"{fmt_value(base_value, base['unit'])} -> "
                  f"{fmt_value(row['value'], row['unit'])} ({rel:+.1%})",
                  rel=rel)
    for key in sorted(baseline.keys() - current.keys()):
        message = ("baseline row missing from this run: "
                   f"{key[0]}/{key[1]}/{key[2]}")
        if fail_fraction is not None:
            failures.append(message)
        else:
            warnings.append(message)
    return warnings, failures


def parse_percent(text):
    try:
        pct = float(text)
    except ValueError:
        raise ValueError(f"--fail-on-regression needs a number, got '{text}'")
    if not pct > 0:
        raise ValueError(f"--fail-on-regression must be positive, got {pct}")
    return pct / 100.0


def parse_args(argv):
    """Split argv into (paths, baseline_path, fail_fraction); -h -> exit."""
    paths, baseline, fail_fraction = [], None, None
    args = list(argv[1:])
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(__doc__)
            raise SystemExit(0)
        if arg == "--baseline":
            if not args:
                raise ValueError("--baseline requires a path")
            baseline = args.pop(0)
        elif arg.startswith("--baseline="):
            baseline = arg.split("=", 1)[1]
        elif arg == "--fail-on-regression":
            if not args:
                raise ValueError("--fail-on-regression requires a percentage")
            fail_fraction = parse_percent(args.pop(0))
        elif arg.startswith("--fail-on-regression="):
            fail_fraction = parse_percent(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if fail_fraction is not None and baseline is None:
        raise ValueError("--fail-on-regression requires --baseline")
    return paths, baseline, fail_fraction


def main(argv):
    try:
        paths, baseline_path, fail_fraction = parse_args(argv)
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    files = collect(paths)
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1

    baseline = {}
    if baseline_path is not None:
        # A missing baseline location is a warning, not an error: fresh
        # checkouts may predate the committed reference run.
        baseline_files = (collect([baseline_path])
                          if os.path.exists(baseline_path) else [])
        if not baseline_files:
            print(f"warning: no BENCH_*.json baselines under "
                  f"{baseline_path}", file=sys.stderr)
        for path in baseline_files:
            try:
                baseline.update(index_rows(load_rows(path)))
            except (OSError, ValueError, json.JSONDecodeError) as err:
                print(f"error: {err}", file=sys.stderr)
                return 1

    status = 0
    current = {}
    for path in files:
        try:
            rows = load_rows(path)
            print_table(path, rows)
            current.update(index_rows(rows))
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"error: {err}", file=sys.stderr)
            status = 1

    if baseline_path is not None and baseline:
        warnings, failures = diff_against_baseline(current, baseline,
                                                   fail_fraction)
        if warnings:
            print(f"baseline diff ({len(warnings)} warning(s), informational "
                  "only):", file=sys.stderr)
            for m in warnings:
                print(f"  warning: {m}", file=sys.stderr)
        if failures:
            print(f"baseline regression gate ({len(failures)} failure(s), "
                  f"threshold {fail_fraction:.0%}):", file=sys.stderr)
            for m in failures:
                print(f"  FAIL: {m}", file=sys.stderr)
            status = 1
        if not warnings and not failures:
            print("baseline diff: all rows within "
                  f"{WARN_FRACTION:.0%} of baseline", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
