#!/usr/bin/env python3
"""Tests for bench_summary.py: pins the BENCH_*.json schema and the printed
summary so docs/benchmarks.md can't silently drift from the tooling.

Stdlib only (unittest), so CI runs it with a bare python3:

    python3 scripts/test_bench_summary.py

(also discoverable by pytest, which collects unittest cases).
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stderr, redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_summary  # noqa: E402

# The documented schema (docs/benchmarks.md): a flat array of
# {bench, config, metric, value, unit} rows.
FIXTURE_ROWS = [
    {"bench": "open_loop", "config": "load_0.8x",
     "metric": "latency_p99", "value": 1.38e-4, "unit": "s"},
    {"bench": "open_loop", "config": "hetero_capability-aware",
     "metric": "latency_p99", "value": 9.29e-5, "unit": "s"},
    {"bench": "open_loop", "config": "fleet",
     "metric": "capacity_rps", "value": 104000.0, "unit": "req/s"},
]


class BenchSummaryTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def write_fixture(self, name, payload):
        path = os.path.join(self.tmp.name, name)
        with open(path, "w") as f:
            if isinstance(payload, str):
                f.write(payload)
            else:
                json.dump(payload, f)
        return path

    def run_main(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with redirect_stdout(out), redirect_stderr(err):
            status = bench_summary.main(["bench_summary.py"] + argv)
        return status, out.getvalue(), err.getvalue()

    def test_prints_fixture_rows_and_formats_units(self):
        self.write_fixture("BENCH_open_loop.json", FIXTURE_ROWS)
        status, out, err = self.run_main([self.tmp.name])
        self.assertEqual(0, status, err)
        # Header names the bench and the source file.
        self.assertIn("== open_loop", out)
        self.assertIn("BENCH_open_loop.json", out)
        # Every config/metric lands in the table.
        for row in FIXTURE_ROWS:
            self.assertIn(row["config"], out)
            self.assertIn(row["metric"], out)
        # Seconds are scaled to an engineering suffix, other units pass
        # through verbatim.
        self.assertIn("138 us", out)
        self.assertIn("92.9 us", out)
        self.assertIn("req/s", out)

    def test_directory_glob_only_picks_bench_files(self):
        self.write_fixture("BENCH_open_loop.json", FIXTURE_ROWS)
        self.write_fixture("unrelated.json", [{"not": "a bench row"}])
        status, out, _ = self.run_main([self.tmp.name])
        self.assertEqual(0, status)
        self.assertNotIn("unrelated", out)

    def test_missing_schema_key_fails(self):
        row = dict(FIXTURE_ROWS[0])
        del row["unit"]
        self.write_fixture("BENCH_bad.json", [row])
        status, _, err = self.run_main([self.tmp.name])
        self.assertEqual(1, status)
        self.assertIn("missing key 'unit'", err)

    def test_malformed_json_and_non_array_fail(self):
        self.write_fixture("BENCH_broken.json", "{not json")
        status, _, err = self.run_main([self.tmp.name])
        self.assertEqual(1, status)
        self.assertIn("error:", err)

        self.write_fixture("BENCH_broken.json", {"rows": FIXTURE_ROWS})
        status, _, err = self.run_main([self.tmp.name])
        self.assertEqual(1, status)
        self.assertIn("expected a JSON array", err)

    def test_no_inputs_is_an_error(self):
        status, _, err = self.run_main([self.tmp.name])
        self.assertEqual(1, status)
        self.assertIn("no BENCH_*.json files found", err)

    def make_baseline_dir(self, rows):
        base_dir = os.path.join(self.tmp.name, "baselines")
        os.makedirs(base_dir, exist_ok=True)
        with open(os.path.join(base_dir, "BENCH_open_loop.json"), "w") as f:
            json.dump(rows, f)
        return base_dir

    def test_baseline_diff_is_warn_only(self):
        # 2x drift on one row, a new row, and a missing baseline row must
        # all be reported on stderr without failing the run.
        base_dir = self.make_baseline_dir(FIXTURE_ROWS + [
            {"bench": "open_loop", "config": "gone", "metric": "latency_p99",
             "value": 1.0, "unit": "s"}])
        current = [dict(FIXTURE_ROWS[0], value=FIXTURE_ROWS[0]["value"] * 2),
                   FIXTURE_ROWS[1], FIXTURE_ROWS[2],
                   {"bench": "open_loop", "config": "slo_1.20x_edf_shed",
                    "metric": "interactive_p99", "value": 6e-5, "unit": "s"}]
        self.write_fixture("BENCH_open_loop.json", current)
        status, _, err = self.run_main(
            [self.tmp.name, "--baseline", base_dir])
        self.assertEqual(0, status, err)
        self.assertIn("drift open_loop/load_0.8x/latency_p99", err)
        self.assertIn("+100.0%", err)
        self.assertIn(
            "new row (no baseline): open_loop/slo_1.20x_edf_shed", err)
        self.assertIn(
            "baseline row missing from this run: open_loop/gone", err)

    def test_baseline_diff_quiet_when_within_tolerance(self):
        base_dir = self.make_baseline_dir(FIXTURE_ROWS)
        nudged = [dict(r, value=r["value"] * 1.05) for r in FIXTURE_ROWS]
        self.write_fixture("BENCH_open_loop.json", nudged)
        status, _, err = self.run_main(
            [self.tmp.name, f"--baseline={base_dir}"])
        self.assertEqual(0, status, err)
        self.assertNotIn("drift", err)
        self.assertIn("all rows within", err)

    def test_missing_baseline_dir_warns_but_passes(self):
        self.write_fixture("BENCH_open_loop.json", FIXTURE_ROWS)
        status, _, err = self.run_main(
            [self.tmp.name, "--baseline",
             os.path.join(self.tmp.name, "nonexistent")])
        self.assertEqual(0, status, err)
        self.assertIn("no BENCH_*.json baselines", err)

    def test_baseline_flag_requires_a_path(self):
        status, _, err = self.run_main(["--baseline"])
        self.assertEqual(1, status)
        self.assertIn("--baseline requires a path", err)

    def test_fail_on_regression_gates_large_drift(self):
        # The same 2x drift that the warn-only mode tolerates fails the run
        # when a gate threshold is armed; missing baseline rows fail too,
        # but brand-new rows stay informational.
        base_dir = self.make_baseline_dir(FIXTURE_ROWS + [
            {"bench": "open_loop", "config": "gone", "metric": "latency_p99",
             "value": 1.0, "unit": "s"}])
        current = [dict(FIXTURE_ROWS[0], value=FIXTURE_ROWS[0]["value"] * 2),
                   FIXTURE_ROWS[1], FIXTURE_ROWS[2],
                   {"bench": "open_loop", "config": "slo_1.20x_edf_shed",
                    "metric": "interactive_p99", "value": 6e-5, "unit": "s"}]
        self.write_fixture("BENCH_open_loop.json", current)
        status, _, err = self.run_main(
            [self.tmp.name, "--baseline", base_dir,
             "--fail-on-regression", "25"])
        self.assertEqual(1, status, err)
        self.assertIn("FAIL: drift open_loop/load_0.8x/latency_p99", err)
        self.assertIn(
            "FAIL: baseline row missing from this run: open_loop/gone", err)
        self.assertIn(
            "new row (no baseline): open_loop/slo_1.20x_edf_shed", err)
        self.assertNotIn("FAIL: new row", err)

    def test_fail_on_regression_passes_between_thresholds(self):
        # Drift past the warn threshold but under the gate threshold warns
        # without failing: the gate is strictly looser than the warning.
        base_dir = self.make_baseline_dir(FIXTURE_ROWS)
        nudged = [dict(r, value=r["value"] * 1.15) for r in FIXTURE_ROWS]
        self.write_fixture("BENCH_open_loop.json", nudged)
        status, _, err = self.run_main(
            [self.tmp.name, f"--baseline={base_dir}",
             "--fail-on-regression=25"])
        self.assertEqual(0, status, err)
        self.assertIn("warning: drift", err)
        self.assertNotIn("FAIL", err)

    def test_fail_on_regression_argument_validation(self):
        self.write_fixture("BENCH_open_loop.json", FIXTURE_ROWS)
        for argv, fragment in (
                (["--fail-on-regression"], "requires a percentage"),
                ([self.tmp.name, "--baseline", self.tmp.name,
                  "--fail-on-regression", "zero"], "needs a number"),
                ([self.tmp.name, "--baseline", self.tmp.name,
                  "--fail-on-regression", "-5"], "must be positive"),
                ([self.tmp.name, "--fail-on-regression", "25"],
                 "requires --baseline")):
            status, _, err = self.run_main(argv)
            self.assertEqual(1, status, argv)
            self.assertIn(fragment, err)


if __name__ == "__main__":
    unittest.main()
