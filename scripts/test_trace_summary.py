#!/usr/bin/env python3
"""Unit tests for trace_summary.py — pins the Chrome-trace JSON schema.

Runs against synthetic traces (no C++ build needed), so the docs CI can
hold the trace contract: valid fleet and device traces pass; malformed
events, wrong per-PCU totals, and makespan violations fail loudly.

Usage: python3 scripts/test_trace_summary.py
"""

import copy
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_summary


def fleet_trace():
    """A minimal but complete fleet trace: 2 PCUs, 3 requests, 1 swap,
    one lost attempt on PCU 1, and matching otherData totals."""
    events = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "pcnna fleet"}},
        {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name",
         "args": {"name": "pcu 0"}},
        {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
         "args": {"name": "pcnna tenants"}},
        # PCU 0: two services, the second swapped banks first.
        {"ph": "X", "pid": 1, "tid": 0, "name": "req 0", "cat": "service",
         "ts": 0.0, "dur": 10.0,
         "args": {"id": 0, "start": 0.0, "end": 1e-5, "warmup": 2e-6,
                  "swap": 0.0, "swapped": 0}},
        {"ph": "X", "pid": 1, "tid": 0, "name": "req 1", "cat": "service",
         "ts": 10.0, "dur": 12.0,
         "args": {"id": 1, "start": 1e-5, "end": 2.2e-5, "warmup": 2e-6,
                  "swap": 3e-6, "swapped": 1}},
        # PCU 1: one service and one fault-destroyed attempt.
        {"ph": "X", "pid": 1, "tid": 1, "name": "req 2", "cat": "service",
         "ts": 0.0, "dur": 10.0,
         "args": {"id": 2, "start": 0.0, "end": 1e-5, "warmup": 2e-6,
                  "swap": 0.0, "swapped": 0}},
        {"ph": "X", "pid": 1, "tid": 1, "name": "lost attempt",
         "cat": "fault", "ts": 10.0, "dur": 4.0,
         "args": {"id": 3, "attempt": 1, "start": 1e-5, "end": 1.4e-5}},
        # Tenant-track instant and a queue-depth counter sample.
        {"ph": "i", "pid": 2, "tid": 0, "name": "shed", "cat": "shed",
         "ts": 5.0, "args": {"id": 4}},
        {"ph": "C", "pid": 1, "tid": 0, "name": "queue depth", "ts": 0.0,
         "args": {"pending": 3}},
    ]
    other = {
        "policy": "edf", "pcus": 2, "spans": 5, "makespan": 2.5e-5,
        "per_pcu": [
            {"pcu": 0, "requests": 2, "busy_time": (1e-5 - 0.0) +
             (2.2e-5 - 1e-5), "warmup_time": 4e-6, "swap_time": 3e-6,
             "swaps": 1, "lost_attempts": 0, "lost_time": 0.0},
            {"pcu": 1, "requests": 1, "busy_time": 1e-5,
             "warmup_time": 2e-6, "swap_time": 0.0, "swaps": 0,
             "lost_attempts": 1, "lost_time": 1.4e-5 - 1e-5},
        ],
    }
    return {"displayTimeUnit": "ms", "traceEvents": events,
            "otherData": other}


def device_trace():
    """A LayerTrace-style device trace: no otherData, device category."""
    return {"displayTimeUnit": "ms", "traceEvents": [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "pcnna device"}},
        {"ph": "X", "pid": 1, "tid": 0, "name": "optical", "cat": "device",
         "ts": 0.0, "dur": 3.0, "args": {"start": 0.0, "end": 3e-6}},
    ]}


def write_tmp(trace, directory):
    fd, path = tempfile.mkstemp(suffix=".json", dir=directory)
    with os.fdopen(fd, "w") as f:
        json.dump(trace, f)
    return path


class ValidateEventsTest(unittest.TestCase):
    def test_counts_phases(self):
        counts = trace_summary.validate_events(fleet_trace()["traceEvents"])
        self.assertEqual(counts["M"], 3)
        self.assertEqual(counts["X"], 4)
        self.assertEqual(counts["i"], 1)
        self.assertEqual(counts["C"], 1)

    def test_rejects_unknown_phase(self):
        events = [{"ph": "B", "pid": 1, "tid": 0, "name": "x", "ts": 0.0}]
        with self.assertRaisesRegex(trace_summary.TraceError, "phase"):
            trace_summary.validate_events(events)

    def test_rejects_missing_duration(self):
        events = [{"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": 0.0}]
        with self.assertRaisesRegex(trace_summary.TraceError, "dur"):
            trace_summary.validate_events(events)

    def test_rejects_negative_duration(self):
        events = [{"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": 0.0,
                   "dur": -1.0}]
        with self.assertRaisesRegex(trace_summary.TraceError, "dur"):
            trace_summary.validate_events(events)

    def test_rejects_unknown_category(self):
        events = [{"ph": "i", "pid": 1, "tid": 0, "name": "x", "ts": 0.0,
                   "cat": "mystery"}]
        with self.assertRaisesRegex(trace_summary.TraceError, "category"):
            trace_summary.validate_events(events)

    def test_rejects_non_numeric_counter(self):
        events = [{"ph": "C", "pid": 1, "tid": 0, "name": "q", "ts": 0.0,
                   "args": {"pending": "three"}}]
        with self.assertRaisesRegex(trace_summary.TraceError, "numeric"):
            trace_summary.validate_events(events)

    def test_rejects_non_integer_track_ids(self):
        events = [{"ph": "i", "pid": "one", "tid": 0, "name": "x",
                   "ts": 0.0}]
        with self.assertRaisesRegex(trace_summary.TraceError, "pid"):
            trace_summary.validate_events(events)


class ReconcileTest(unittest.TestCase):
    def test_exact_reconciliation_passes(self):
        trace = fleet_trace()
        got, problems, ok = trace_summary.reconcile(
            trace["traceEvents"], trace["otherData"])
        self.assertTrue(ok)
        self.assertEqual(problems, [])
        self.assertEqual(got[0]["requests"], 2)
        self.assertEqual(got[0]["swaps"], 1)
        self.assertEqual(got[1]["lost_attempts"], 1)

    def test_busy_time_mismatch_fails(self):
        trace = copy.deepcopy(fleet_trace())
        trace["otherData"]["per_pcu"][0]["busy_time"] += 1e-3
        _, problems, ok = trace_summary.reconcile(
            trace["traceEvents"], trace["otherData"])
        self.assertFalse(ok)
        self.assertTrue(any("busy_time" in p for p in problems))

    def test_swap_count_mismatch_fails(self):
        trace = copy.deepcopy(fleet_trace())
        trace["otherData"]["per_pcu"][0]["swaps"] = 0
        _, problems, ok = trace_summary.reconcile(
            trace["traceEvents"], trace["otherData"])
        self.assertFalse(ok)

    def test_makespan_before_last_span_fails(self):
        trace = copy.deepcopy(fleet_trace())
        trace["otherData"]["makespan"] = 1e-6
        _, problems, ok = trace_summary.reconcile(
            trace["traceEvents"], trace["otherData"])
        self.assertFalse(ok)
        self.assertTrue(any("makespan" in p for p in problems))

    def test_pcu_count_mismatch_raises(self):
        trace = copy.deepcopy(fleet_trace())
        trace["otherData"]["pcus"] = 3
        with self.assertRaisesRegex(trace_summary.TraceError, "per_pcu"):
            trace_summary.reconcile(trace["traceEvents"],
                                    trace["otherData"])

    def test_service_event_on_unknown_pcu_raises(self):
        trace = copy.deepcopy(fleet_trace())
        trace["traceEvents"][3]["tid"] = 7
        with self.assertRaisesRegex(trace_summary.TraceError, "PCU"):
            trace_summary.reconcile(trace["traceEvents"],
                                    trace["otherData"])

    def test_tolerance_match_is_noted_not_fatal(self):
        trace = copy.deepcopy(fleet_trace())
        trace["otherData"]["per_pcu"][0]["busy_time"] *= (1.0 + 1e-14)
        _, problems, ok = trace_summary.reconcile(
            trace["traceEvents"], trace["otherData"])
        self.assertTrue(ok)
        self.assertTrue(any("tolerance" in p for p in problems))


class EndToEndTest(unittest.TestCase):
    def run_main(self, *traces):
        with tempfile.TemporaryDirectory() as d:
            paths = [write_tmp(t, d) for t in traces]
            return trace_summary.main(["trace_summary.py"] + paths)

    def test_valid_fleet_and_device_traces_exit_zero(self):
        self.assertEqual(0, self.run_main(fleet_trace(), device_trace()))

    def test_mismatched_totals_exit_nonzero(self):
        bad = copy.deepcopy(fleet_trace())
        bad["otherData"]["per_pcu"][1]["requests"] = 9
        self.assertEqual(1, self.run_main(bad))

    def test_malformed_json_shape_exits_nonzero(self):
        self.assertEqual(1, self.run_main({"traceEvents": "nope"}))

    def test_usage_without_files(self):
        self.assertEqual(2, trace_summary.main(["trace_summary.py"]))


if __name__ == "__main__":
    unittest.main(verbosity=2)
