#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/*.md.

Stdlib only (CI's docs job runs it with a bare python3). Checks every
inline markdown link [text](target) whose target is not an absolute URL
or in-page anchor: the target path, resolved against the linking file's
directory, must exist in the repo. Prints one line per dead link and
exits nonzero if any were found.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check_file(md: Path, repo_root: Path) -> list[str]:
    dead = []
    text = md.read_text(encoding="utf-8")
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]  # drop in-file anchors
        if not path:
            continue
        resolved = (md.parent / path).resolve()
        try:
            resolved.relative_to(repo_root.resolve())
        except ValueError:
            dead.append(f"{md}: link escapes the repo: {target}")
            continue
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            dead.append(f"{md}:{line}: dead link: {target}")
    return dead


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    files = [repo_root / "README.md"] + sorted(
        (repo_root / "docs").glob("*.md")
    )
    dead = []
    checked = 0
    for md in files:
        if not md.exists():
            dead.append(f"expected file is missing: {md}")
            continue
        checked += 1
        dead.extend(check_file(md, repo_root))
    for line in dead:
        print(line)
    print(f"checked {checked} files: "
          f"{'FAIL' if dead else 'OK'} ({len(dead)} dead links)")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main())
