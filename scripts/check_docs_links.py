#!/usr/bin/env python3
"""Fail on dead relative links in README.md / docs/*.md, and on orphans.

Stdlib only (CI's docs job runs it with a bare python3). Two checks:

1. Dead links: every inline markdown link [text](target) whose target is
   not an absolute URL or in-page anchor must resolve (relative to the
   linking file's directory) to a path that exists inside the repo.
2. Orphan docs: every docs/*.md file must be reachable from README.md by
   following relative markdown links between .md files — a doc nobody
   links to is a doc nobody reads, and it silently rots.

Prints one line per problem and exits nonzero if any were found.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def md_links(md: Path) -> list[tuple[str, str, int]]:
    """(path, original target, 1-based line) per relative link in `md`,
    with URL/anchor targets skipped and in-file anchors dropped from
    `path`."""
    text = md.read_text(encoding="utf-8")
    links = []
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_PREFIXES):
            continue
        path = target.split("#", 1)[0]  # drop in-file anchors
        if path:
            line = text.count("\n", 0, match.start()) + 1
            links.append((path, target, line))
    return links


def check_file(md: Path, repo_root: Path) -> list[str]:
    dead = []
    for path, target, line in md_links(md):
        resolved = (md.parent / path).resolve()
        try:
            resolved.relative_to(repo_root.resolve())
        except ValueError:
            dead.append(f"{md}: link escapes the repo: {target}")
            continue
        if not resolved.exists():
            dead.append(f"{md}:{line}: dead link: {target}")
    return dead


def find_orphans(readme: Path, docs: list[Path]) -> list[str]:
    """docs/*.md files not reachable from README.md via relative links."""
    reachable: set[Path] = set()
    frontier = [readme]
    while frontier:
        md = frontier.pop()
        if md in reachable or not md.exists():
            continue
        reachable.add(md)
        for path, _, _ in md_links(md):
            resolved = (md.parent / path).resolve()
            if resolved.suffix == ".md" and resolved not in reachable:
                frontier.append(resolved)
    return [
        f"{doc}: orphan doc (not reachable from {readme.name} via links)"
        for doc in docs
        if doc.resolve() not in reachable
    ]


def main() -> int:
    repo_root = Path(__file__).resolve().parent.parent
    readme = repo_root / "README.md"
    docs = sorted((repo_root / "docs").glob("*.md"))
    files = [readme] + docs
    problems = []
    checked = 0
    for md in files:
        if not md.exists():
            problems.append(f"expected file is missing: {md}")
            continue
        checked += 1
        problems.extend(check_file(md, repo_root))
    problems.extend(find_orphans(readme, docs))
    for line in problems:
        print(line)
    print(f"checked {checked} files: "
          f"{'FAIL' if problems else 'OK'} ({len(problems)} problems)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
