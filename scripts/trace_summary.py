#!/usr/bin/env python3
"""Validate a PCNNA Chrome trace and reconcile it against the report.

Usage: trace_summary.py TRACE.json [TRACE2.json ...]

Two jobs:

 1. Validate the Chrome trace-event JSON shape (the "JSON object format"
    Perfetto and chrome://tracing load): a top-level "traceEvents" list of
    events whose phases, track ids, timestamps, and categories are
    well-formed.

 2. When the trace carries the fleet telemetry's "otherData" section (the
    OpenLoopReport per-PCU totals the C++ exporter embeds), recompute every
    per-PCU breakdown — requests, busy/warmup/swap time, swap count, lost
    attempts and lost time — from the events' exact simulated-seconds args
    and reconcile them against the embedded report totals. The C++ side
    prints doubles with %.17g, json parses them back to the identical
    IEEE-754 values, and both sides accumulate in schedule order, so the
    comparison is exact equality (a tiny relative tolerance is kept as a
    fallback and reported as non-exact if used). Device-level layer traces
    (core::write_chrome_trace) have no otherData and are validated only.

Exit status 0 when every file validates (and reconciles, where
applicable); 1 otherwise. Stdlib only.
"""

from __future__ import annotations

import json
import sys

KNOWN_PHASES = {"M", "X", "i", "C"}
KNOWN_CATEGORIES = {"", "service", "stage", "overhead", "fault", "queue",
                    "shed", "device"}
# Relative tolerance fallback; exact equality is the expectation.
REL_TOL = 1e-12


class TraceError(Exception):
    pass


def fail(msg):
    raise TraceError(msg)


def validate_events(events):
    """Shape-check every trace event; returns counts per phase."""
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    counts = {}
    for i, e in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(f"{where} is not an object")
        ph = e.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{where} has unknown phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if not isinstance(e.get("pid"), int) or not isinstance(
                e.get("tid"), int):
            fail(f"{where} pid/tid must be integers")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(f"{where} needs a non-empty name")
        if ph != "M":
            ts = e.get("ts")
            if not isinstance(ts, (int, float)):
                fail(f"{where} needs a numeric ts")
            cat = e.get("cat", "")
            if cat not in KNOWN_CATEGORIES:
                fail(f"{where} has unknown category {cat!r}")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} complete event needs dur >= 0")
        if ph == "C":
            args = e.get("args")
            if not isinstance(args, dict) or not args:
                fail(f"{where} counter event needs a non-empty args object")
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    fail(f"{where} counter series {k!r} is not numeric")
    return counts


def fleet_pid(events):
    """pid of the 'pcnna fleet' process, or None for device traces."""
    for e in events:
        if (e.get("ph") == "M" and e.get("name") == "process_name"
                and e.get("args", {}).get("name") == "pcnna fleet"):
            return e["pid"]
    return None


def arg(e, key, where):
    args = e.get("args", {})
    v = args.get(key)
    if not isinstance(v, (int, float)):
        fail(f"{where} ({e.get('cat')}/{e.get('name')}) missing "
             f"numeric arg {key!r}")
    return v


def recompute_per_pcu(events, pid, num_pcus):
    """Per-PCU totals from the exact simulated-seconds event args.

    Accumulation runs in file order, which is schedule order — the same
    order BatchRunner::fill_breakdowns uses — so the floating-point sums
    are bit-identical to the report's, not merely close.
    """
    pcus = [{"requests": 0, "busy_time": 0.0, "warmup_time": 0.0,
             "swap_time": 0.0, "swaps": 0, "lost_attempts": 0,
             "lost_time": 0.0} for _ in range(num_pcus)]
    for i, e in enumerate(events):
        if e.get("ph") != "X" or e.get("pid") != pid:
            continue
        where = f"traceEvents[{i}]"
        cat = e.get("cat", "")
        tid = e["tid"]
        if cat in ("service", "stage", "fault") and not tid < num_pcus:
            fail(f"{where} names PCU {tid} but the fleet has {num_pcus}")
        b = pcus[tid] if tid < num_pcus else None
        if cat == "service":
            start, end = arg(e, "start", where), arg(e, "end", where)
            b["requests"] += 1
            b["busy_time"] += end - start
            b["warmup_time"] += arg(e, "warmup", where)
            b["swap_time"] += arg(e, "swap", where)
            b["swaps"] += int(arg(e, "swapped", where))
        elif cat == "stage":
            start, end = arg(e, "start", where), arg(e, "end", where)
            if arg(e, "stage", where) == 0:
                b["requests"] += 1
            b["busy_time"] += end - start
            b["warmup_time"] += arg(e, "pin", where)
        elif cat == "fault" and e.get("name") == "lost attempt":
            start, end = arg(e, "start", where), arg(e, "end", where)
            b["lost_attempts"] += 1
            b["lost_time"] += end - start
    return pcus


def check_value(name, got, want, problems):
    """Exact match preferred; tolerance fallback is reported, not fatal."""
    if got == want:
        return True
    scale = max(1.0, abs(want))
    if abs(got - want) <= REL_TOL * scale:
        problems.append(
            f"  note: {name} matched only within tolerance "
            f"(got {got!r}, report {want!r})")
        return True
    problems.append(f"  MISMATCH {name}: trace {got!r} vs report {want!r}")
    return False


def reconcile(events, other):
    """Cross-check recomputed per-PCU totals against otherData.per_pcu."""
    pid = fleet_pid(events)
    if pid is None:
        fail("otherData present but no 'pcnna fleet' process track")
    per_pcu = other.get("per_pcu")
    if not isinstance(per_pcu, list):
        fail("otherData.per_pcu missing or not a list")
    if len(per_pcu) != other.get("pcus"):
        fail(f"otherData.per_pcu has {len(per_pcu)} entries for "
             f"{other.get('pcus')} PCUs")
    got = recompute_per_pcu(events, pid, len(per_pcu))
    problems = []
    ok = True
    for p, want in enumerate(per_pcu):
        for key in ("requests", "busy_time", "warmup_time", "swap_time",
                    "swaps", "lost_attempts", "lost_time"):
            if not check_value(f"pcu {p} {key}", got[p][key], want[key],
                               problems):
                ok = False
    # The report makespan covers every span (post-drain health timers can
    # push it past the last completion, never before it).
    makespan = other.get("makespan", 0.0)
    last_end = 0.0
    for e in events:
        if e.get("ph") == "X" and e.get("pid") == pid and \
                e.get("cat") in ("service", "stage"):
            last_end = max(last_end, e["args"]["end"])
    if makespan < last_end:
        problems.append(
            f"  MISMATCH makespan {makespan!r} < last span end {last_end!r}")
        ok = False
    return got, problems, ok


def summarize(path):
    with open(path) as f:
        trace = json.load(f)
    if not isinstance(trace, dict):
        fail("top level is not an object")
    counts = validate_events(trace.get("traceEvents"))
    print(f"{path}: {sum(counts.values())} events "
          f"({', '.join(f'{v} {k}' for k, v in sorted(counts.items()))})")

    other = trace.get("otherData")
    if other is None:
        print("  no otherData section (device trace): validated only")
        return True

    got, problems, ok = reconcile(trace["traceEvents"], other)
    for line in problems:
        print(line)
    print(f"  policy={other.get('policy')} pcus={other.get('pcus')} "
          f"spans={other.get('spans')} makespan={other.get('makespan')}")
    header = (f"  {'pcu':>4} {'requests':>9} {'busy [s]':>14} "
              f"{'warmup [s]':>14} {'swap [s]':>12} {'swaps':>6} "
              f"{'lost':>5}")
    print(header)
    for p, b in enumerate(got):
        print(f"  {p:>4} {b['requests']:>9} {b['busy_time']:>14.6g} "
              f"{b['warmup_time']:>14.6g} {b['swap_time']:>12.6g} "
              f"{b['swaps']:>6} {b['lost_attempts']:>5}")
    print("  reconciliation: " + ("OK (exact)" if ok and not problems
                                  else "OK" if ok else "FAILED"))
    return ok


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip().splitlines()[2])
        return 2
    ok = True
    for path in argv[1:]:
        try:
            if not summarize(path):
                ok = False
        except (TraceError, OSError, json.JSONDecodeError, KeyError) as e:
            print(f"{path}: INVALID — {e}")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
